// Package services provides the deployment-support services of §4:
// a name registry (the "key/value store to bootstrap capabilities on
// new Processes") and a node-monitoring service that translates
// Controller failures into epoch announcements (the paper delegates
// this to Zookeeper).
package services

import (
	"fmt"
	"sort"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Registry Request tags. A name now binds a *set* of members (replicas
// of one service); the v1 single-cap operations remain decodable so
// capabilities granted before the redesign keep working for one
// release (see the deprecation notes below).
const (
	// TagRegister adds a member to a name's replica set.
	// imm[0:8) = provider node + 1 (0 = unknown; v1 clients send 0),
	// [8:16) = name length, [16:..) = name; caps: SlotCap = the member
	// capability, SlotCont = reply (imm[0:8) = wire.Status, [8:16) =
	// member id, [16:24) = membership version).
	TagRegister uint64 = 0x40
	// TagLookup resolves a name to a single capability — the live
	// member with the lowest id.
	//
	// Deprecated wire surface: v1 clients that only ever hold one
	// instance per name keep working, but new code should go through
	// Client.Resolve (same tag) or Client.ResolveSet.
	// imm[8:16) = name length, [16:..) = name; caps: SlotCont = reply
	// (imm[0:8) = wire.Status; caps SlotCap = the capability).
	TagLookup uint64 = 0x41
	// TagDeregister removes a member from a name's replica set.
	// imm[0:8) = member id, [8:16) = name length, [16:..) = name;
	// caps: SlotCont = reply (imm[0:8) = wire.Status, [8:16) =
	// membership version).
	TagDeregister uint64 = 0x42
	// TagResolveSet resolves a name to its full replica set.
	// imm[8:16) = name length, [16:..) = name; caps: SlotCont = reply
	// (imm[0:8) = wire.Status, [8:16) = membership version, [16:24) =
	// member count n, then per member i < n: imm[24+16i:32+16i) =
	// member id, imm[32+16i:40+16i) = node + 1; the member capability
	// rides in cap slot i). An unknown name is an empty set, not an
	// error — resolving before the first replica registers is a benign
	// race the caller retries through its balancer.
	TagResolveSet uint64 = 0x43
)

// Registry argument slots.
const (
	SlotCap  uint16 = 0
	SlotCont uint16 = 1
)

// MaxMembers bounds one name's replica set: the ResolveSet reply
// carries every member in one invocation (16 immediate bytes and one
// cap slot each), and the bound keeps the registry's memory O(names).
const MaxMembers = 32

// Member is one replica of a named service as seen by ResolveSet.
type Member struct {
	// ID is the registry-assigned member id, unique across the
	// registry's lifetime; Deregister takes it back.
	ID uint64
	// Node is the provider's node, -1 if the registrant didn't say.
	// Locality-aware routing keys off it.
	Node int
	// Cap is the member's root capability, installed in the resolving
	// Process's capability space.
	Cap proc.Cap
}

// Set is a name's replica set at one membership version. Version
// increases on every mutation of any name (a registry-global counter),
// so callers can cache a Set and cheaply detect staleness.
type Set struct {
	Version uint64
	Members []Member
}

// member is the registry's record of one replica.
type member struct {
	id   uint64
	node int // -1 = unknown
	cp   proc.Cap
}

// Registry is the capability name service. Services register their
// root Requests under well-known names — N replicas under one name —
// and applications resolve either one capability (Resolve) or the
// whole set (ResolveSet). Capability distribution happens through
// ordinary Request-argument delegation.
//
// Membership is pruned three ways: explicit Deregister, revocation of
// a member capability (a MonitorReceive watcher installed at register
// time — graceful retire via Bye lands here too), and node fencing
// (BindWatch subscribes to a NodeWatch and drops every member on a
// fenced Controller's node).
type Registry struct {
	P *proc.Process

	cl      *core.Cluster
	names   map[string][]*member
	version uint64
	nextID  uint64

	// Root Requests. Grant them to new Processes via Connect.
	Register   proc.Cap
	Lookup     proc.Cap
	Deregister proc.Cap
	ResolveSet proc.Cap
}

// NewRegistry attaches the registry Process on a node.
func NewRegistry(cl *core.Cluster, node int) *Registry {
	return &Registry{
		P:     proc.Attach(cl, node, "registry", 0),
		cl:    cl,
		names: make(map[string][]*member),
	}
}

// Start creates the root Requests and spawns the serve loop.
func (r *Registry) Start(t *sim.Task) error {
	for _, root := range []struct {
		tag uint64
		dst *proc.Cap
	}{
		{TagRegister, &r.Register},
		{TagLookup, &r.Lookup},
		{TagDeregister, &r.Deregister},
		{TagResolveSet, &r.ResolveSet},
	} {
		c, err := r.P.RequestCreate(t, root.tag, nil, nil)
		if err != nil {
			return fmt.Errorf("registry: %w", err)
		}
		*root.dst = c
	}
	r.P.Kernel().Spawn("registry", r.serve)
	return nil
}

// Version returns the registry-global membership version (bumped on
// every successful Register/Deregister/prune).
func (r *Registry) Version() uint64 { return r.version }

// Members returns a copy of a name's member list (tests, autoscalers).
func (r *Registry) Members(name string) []Member {
	ms := r.names[name]
	out := make([]Member, 0, len(ms))
	for _, m := range ms {
		out = append(out, Member{ID: m.id, Node: m.node, Cap: m.cp})
	}
	return out
}

// BindWatch subscribes the registry to a NodeWatch so fenced nodes
// drop out of every replica set: when the detector fences a
// Controller, all members registered from its node are pruned. This is
// the path revocation monitoring cannot cover — a crashed Controller's
// revocation trees die with it, so no MonitorReceive fires.
func (r *Registry) BindWatch(w *NodeWatch) {
	w.Subscribe(func(e WatchEvent) {
		if e.Kind != WatchFenced {
			return
		}
		if node, ok := nodeOfCtrl(r.cl, e.Ctrl); ok {
			r.PruneNode(node)
		}
	})
}

// PruneNode removes every member registered from a node (fencing).
// Names are visited in sorted order so the version sequence is
// deterministic.
func (r *Registry) PruneNode(node int) {
	keys := make([]string, 0, len(r.names))
	for name := range r.names {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	for _, name := range keys {
		ms := r.names[name]
		kept := ms[:0]
		for _, m := range ms {
			if m.node != node {
				kept = append(kept, m)
			}
		}
		if len(kept) != len(ms) {
			r.names[name] = kept
			r.version++
		}
	}
}

// removeMember drops one member by id; idempotent (revocation watchers
// and explicit Deregister may race).
func (r *Registry) removeMember(name string, id uint64) bool {
	ms := r.names[name]
	for i, m := range ms {
		if m.id == id {
			r.names[name] = append(ms[:i], ms[i+1:]...)
			r.version++
			return true
		}
	}
	return false
}

func (r *Registry) serve(t *sim.Task) {
	for {
		d, ok := r.P.Receive(t)
		if !ok {
			return
		}
		r.handle(t, d)
		d.Done()
	}
}

func (r *Registry) handle(t *sim.Task, d *proc.Delivery) {
	cont, haveCont := d.Cap(SlotCont)
	reply := func(st wire.Status, imms []wire.ImmArg, args []proc.Arg) {
		if !haveCont {
			return
		}
		all := append([]wire.ImmArg{proc.U64Arg(0, uint64(st))}, imms...)
		if err := r.P.Invoke(t, cont, all, args); err != nil {
			// The resolver died between asking and answering; its
			// Controller already cleaned up the continuation.
			return
		}
	}
	nameLen := int(d.U64(8))
	if nameLen <= 0 || 16+nameLen > len(d.Imms) {
		reply(wire.StatusBadArg, nil, nil)
		return
	}
	name := string(d.Imms[16 : 16+nameLen])
	switch d.Tag {
	case TagRegister:
		c, ok := d.Cap(SlotCap)
		if !ok {
			reply(wire.StatusBadArg, nil, nil)
			return
		}
		ms := r.names[name]
		if len(ms) >= MaxMembers {
			reply(wire.StatusQuota, nil, nil)
			return
		}
		r.nextID++
		m := &member{id: r.nextID, node: int(d.U64(0)) - 1, cp: c}
		r.names[name] = append(ms, m)
		r.version++
		// Auto-prune on revocation: a replica that exits gracefully
		// (Bye) or has its root revoked disappears from the set without
		// a Deregister round-trip.
		if err := r.P.MonitorReceive(t, c, func() {
			r.removeMember(name, m.id)
		}); err != nil {
			r.removeMember(name, m.id)
			reply(wire.StatusAborted, nil, nil)
			return
		}
		reply(wire.StatusOK, []wire.ImmArg{
			proc.U64Arg(8, m.id),
			proc.U64Arg(16, r.version),
		}, nil)
	case TagDeregister:
		if !r.removeMember(name, d.U64(0)) {
			reply(wire.StatusUnknownObj, nil, nil)
			return
		}
		reply(wire.StatusOK, []wire.ImmArg{proc.U64Arg(8, r.version)}, nil)
	case TagLookup:
		ms := r.names[name]
		if len(ms) == 0 {
			reply(wire.StatusUnknownObj, nil, nil)
			return
		}
		best := ms[0]
		for _, m := range ms[1:] {
			if m.id < best.id {
				best = m
			}
		}
		reply(wire.StatusOK, nil, []proc.Arg{{Slot: SlotCap, Cap: best.cp}})
	case TagResolveSet:
		ms := r.names[name]
		imms := []wire.ImmArg{
			proc.U64Arg(8, r.version),
			proc.U64Arg(16, uint64(len(ms))),
		}
		args := make([]proc.Arg, 0, len(ms))
		for i, m := range ms {
			imms = append(imms,
				proc.U64Arg(24+16*i, m.id),
				proc.U64Arg(32+16*i, uint64(m.node+1)))
			args = append(args, proc.Arg{Slot: uint16(i), Cap: m.cp})
		}
		reply(wire.StatusOK, imms, args)
	}
}

// nodeOfCtrl maps a ControllerID to the node it is deployed on.
func nodeOfCtrl(cl *core.Cluster, id cap.ControllerID) (int, bool) {
	for _, c := range cl.Ctrls {
		if c.ID() == id {
			return c.Loc().Node, true
		}
	}
	return 0, false
}

// nameArgs builds the immediate arguments for a name.
func nameArgs(name string) []wire.ImmArg {
	return []wire.ImmArg{
		proc.U64Arg(8, uint64(len(name))),
		proc.BytesArg(16, []byte(name)),
	}
}

// Client is a Process's handle on the registry: the four root Requests
// granted at Connect time plus the typed operations over them. It
// replaces the v1 free functions (RegisterCap/LookupCap) — one handle
// per Process, created once at bootstrap, used for every
// registration and resolution that Process performs.
type Client struct {
	// P is the Process this handle is bound to; all calls issue from
	// its capability space.
	P *proc.Process

	register   proc.Cap
	lookup     proc.Cap
	deregister proc.Cap
	resolveSet proc.Cap
}

// Connect grants a Process the registry's root Requests and returns
// its Client handle (the only GrantCap a deployment needs; everything
// else flows through the registry).
func (r *Registry) Connect(p *proc.Process) (*Client, error) {
	c := &Client{P: p}
	for _, root := range []struct {
		src proc.Cap
		dst *proc.Cap
	}{
		{r.Register, &c.register},
		{r.Lookup, &c.lookup},
		{r.Deregister, &c.deregister},
		{r.ResolveSet, &c.resolveSet},
	} {
		g, err := proc.GrantCap(r.P, root.src, p)
		if err != nil {
			return nil, fmt.Errorf("registry: connect: %w", err)
		}
		*root.dst = g
	}
	return c, nil
}

// Register adds cp as a member of name's replica set. node is the
// provider's node for locality-aware routing (pass -1 if unknown). It
// returns the registry-assigned member id, the ticket Deregister takes
// back.
func (c *Client) Register(t *sim.Task, name string, cp proc.Cap, node int) (uint64, error) {
	imms := append([]wire.ImmArg{proc.U64Arg(0, uint64(node+1))}, nameArgs(name)...)
	d, err := c.P.Call(t, c.register, imms, []proc.Arg{{Slot: SlotCap, Cap: cp}}, SlotCont)
	if err != nil {
		return 0, fmt.Errorf("registry: register %q: %w", name, err)
	}
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("registry: register %q: %w", name, err)
	}
	return d.U64(8), nil
}

// Deregister removes the member id from name's replica set.
func (c *Client) Deregister(t *sim.Task, name string, id uint64) error {
	imms := append([]wire.ImmArg{proc.U64Arg(0, id)}, nameArgs(name)...)
	d, err := c.P.Call(t, c.deregister, imms, nil, SlotCont)
	if err != nil {
		return fmt.Errorf("registry: deregister %q: %w", name, err)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("registry: deregister %q: %w", name, err)
	}
	return nil
}

// Resolve resolves a name to a single capability (the lowest-id live
// member). Unknown names are permanent failures
// (wire.StatusUnknownObj); replicated services should use ResolveSet
// and route instead.
func (c *Client) Resolve(t *sim.Task, name string) (proc.Cap, error) {
	d, err := c.P.Call(t, c.lookup, nameArgs(name), nil, SlotCont)
	if err != nil {
		return proc.Cap{}, fmt.Errorf("registry: resolve %q: %w", name, err)
	}
	if err := d.Err(); err != nil {
		return proc.Cap{}, fmt.Errorf("registry: resolve %q: %w", name, err)
	}
	cp, ok := d.Cap(SlotCap)
	if !ok {
		return proc.Cap{}, fmt.Errorf("registry: resolve %q: no capability in reply", name)
	}
	return cp, nil
}

// ResolveSet resolves a name to its full replica set plus the
// membership version. An unknown name is an empty set (the caller is
// usually racing a replica's first registration and retries).
func (c *Client) ResolveSet(t *sim.Task, name string) (Set, error) {
	d, err := c.P.Call(t, c.resolveSet, nameArgs(name), nil, SlotCont)
	if err != nil {
		return Set{}, fmt.Errorf("registry: resolve-set %q: %w", name, err)
	}
	if err := d.Err(); err != nil {
		return Set{}, fmt.Errorf("registry: resolve-set %q: %w", name, err)
	}
	s := Set{Version: d.U64(8)}
	n := int(d.U64(16))
	for i := 0; i < n; i++ {
		m := Member{ID: d.U64(24 + 16*i), Node: int(d.U64(32+16*i)) - 1}
		if cp, ok := d.Cap(uint16(i)); ok {
			m.Cap = cp
		}
		s.Members = append(s.Members, m)
	}
	return s, nil
}

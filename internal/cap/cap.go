// Package cap defines the FractOS capability model (§3.5 of the
// paper): global object references, rights, per-Process capability
// spaces, and owner-side revocation trees.
//
// A capability names a Memory or Request object that is registered
// with exactly one Controller (its owner). Internally a capability
// holds the owning Controller's address, the object ID, and the
// Controller's epoch (reboot counter); Processes only ever see opaque
// indices (cids) into their capability space, mirroring POSIX file
// descriptors.
//
// Delegation is untracked: it just installs another cap-space entry
// pointing at the same object. Revocation invalidates the object (and
// its revocation-tree descendants) at the owner, which is a single
// message; stale entries elsewhere are purged by an asynchronous
// cleanup broadcast and are also rejected on use because every use
// contacts the owner.
package cap

import "fmt"

// ControllerID addresses a FractOS Controller. IDs are assigned by the
// deployment (the operator pre-deploys Controllers).
type ControllerID uint32

// ObjectID names an object within its owning Controller.
type ObjectID uint64

// Epoch is a Controller reboot counter. It increases monotonically on
// every Controller restart; capabilities minted under an older epoch
// are implicitly revoked (a simple form of Lamport timestamp, §3.6).
type Epoch uint32

// ProcID names a FractOS Process (application or device adaptor).
type ProcID uint64

// CapID is a Process-local capability index ("cid"). 0 is never a
// valid cid.
type CapID uint32

// NilCap is the invalid capability index.
const NilCap CapID = 0

// Kind discriminates the two FractOS object types.
type Kind uint8

const (
	// KindMemory is a Memory object: a registered buffer.
	KindMemory Kind = iota + 1
	// KindRequest is a Request object: an invocable RPC endpoint with
	// preset arguments.
	KindRequest
)

func (k Kind) String() string {
	switch k {
	case KindMemory:
		return "memory"
	case KindRequest:
		return "request"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Rights is a bitmask of authorities a capability conveys. Diminish
// and delegation may only ever clear bits, never set them.
type Rights uint8

const (
	// Read permits reading the memory object (source of memory_copy).
	Read Rights = 1 << iota
	// Write permits writing the memory object (target of memory_copy).
	Write
	// Invoke permits request_invoke on a Request object.
	Invoke
	// Grant permits delegating the capability onward (passing it as a
	// Request argument) and deriving from it.
	Grant
)

// All is the full rights mask appropriate for any object kind.
const All = Read | Write | Invoke | Grant

// MemRights are the rights meaningful for Memory objects.
const MemRights = Read | Write | Grant

// ReqRights are the rights meaningful for Request objects.
const ReqRights = Invoke | Grant

func (r Rights) String() string {
	b := []byte("----")
	if r&Read != 0 {
		b[0] = 'r'
	}
	if r&Write != 0 {
		b[1] = 'w'
	}
	if r&Invoke != 0 {
		b[2] = 'i'
	}
	if r&Grant != 0 {
		b[3] = 'g'
	}
	return string(b)
}

// Has reports whether r includes all rights in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// Diminish returns r with the drop bits cleared. The result is always
// a subset of r (the monotonicity invariant the property tests check).
func (r Rights) Diminish(drop Rights) Rights { return r &^ drop }

// Ref is the global, location-independent name of a FractOS object:
// the owning Controller, the object ID there, and the epoch the
// reference was minted under.
type Ref struct {
	Ctrl  ControllerID
	Obj   ObjectID
	Epoch Epoch
}

// IsZero reports whether the Ref is the zero (invalid) reference.
func (r Ref) IsZero() bool { return r == Ref{} }

func (r Ref) String() string {
	return fmt.Sprintf("ref(c%d/o%d/e%d)", r.Ctrl, r.Obj, r.Epoch)
}

// Entry is one slot of a Process's capability space, maintained by the
// Process's Controller on its behalf.
type Entry struct {
	Ref    Ref
	Kind   Kind
	Rights Rights
	// Size caches the extent of a Memory object so the Process can
	// size buffers without a round trip; authoritative checks still
	// happen at the owner.
	Size uint64
	// Monitored marks capabilities derived from a monitor_delegate
	// target: further delegations must notify the owner (§3.6).
	Monitored bool
	// Leased marks entries whose object is a monitor_delegatee child
	// created specifically for this holder: if the holder fails, its
	// Controller revokes the child so the delegator observes the
	// failure (§3.6's failure-translation model).
	Leased bool
}

// Space is a Process's capability space: a table of entries indexed by
// cid. Slots are reused after Drop to keep spaces compact.
type Space struct {
	entries map[CapID]Entry
	next    CapID
	free    []CapID
}

// NewSpace returns an empty capability space.
func NewSpace() *Space {
	return &Space{entries: make(map[CapID]Entry), next: 1}
}

// Install adds an entry and returns its new cid.
func (s *Space) Install(e Entry) CapID {
	var id CapID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	s.entries[id] = e
	return id
}

// Lookup returns the entry for cid.
func (s *Space) Lookup(id CapID) (Entry, bool) {
	e, ok := s.entries[id]
	return e, ok
}

// Update replaces the entry for an existing cid.
func (s *Space) Update(id CapID, e Entry) bool {
	if _, ok := s.entries[id]; !ok {
		return false
	}
	s.entries[id] = e
	return true
}

// Drop removes cid from the space, freeing the slot for reuse.
func (s *Space) Drop(id CapID) bool {
	if _, ok := s.entries[id]; !ok {
		return false
	}
	delete(s.entries, id)
	s.free = append(s.free, id)
	return true
}

// Len reports the number of live entries.
func (s *Space) Len() int { return len(s.entries) }

// ForEach visits every live entry. Iteration order is unspecified; use
// it only for operations that are order-insensitive (e.g. cleanup).
func (s *Space) ForEach(fn func(CapID, Entry)) {
	for id, e := range s.entries {
		fn(id, e)
	}
}

// PurgeRefs removes every entry whose Ref matches pred, returning the
// removed cids. Used by the revocation cleanup broadcast and the
// stale-epoch purge.
//
// Unlike Drop, purged slots are NOT recycled: the removal is initiated
// by the OS, not the Process, so the Process may still hold the cid —
// recycling it would silently alias a stale handle onto an unrelated
// new capability. A purged cid stays permanently invalid instead.
func (s *Space) PurgeRefs(pred func(Ref) bool) []CapID {
	var dropped []CapID
	for id, e := range s.entries {
		if pred(e.Ref) {
			dropped = append(dropped, id)
		}
	}
	for _, id := range dropped {
		delete(s.entries, id)
	}
	return dropped
}

// Package cap defines the FractOS capability model (§3.5 of the
// paper): global object references, rights, per-Process capability
// spaces, and owner-side revocation trees.
//
// A capability names a Memory or Request object that is registered
// with exactly one Controller (its owner). Internally a capability
// holds the owning Controller's address, the object ID, and the
// Controller's epoch (reboot counter); Processes only ever see opaque
// indices (cids) into their capability space, mirroring POSIX file
// descriptors.
//
// Delegation is untracked: it just installs another cap-space entry
// pointing at the same object. Revocation invalidates the object (and
// its revocation-tree descendants) at the owner, which is a single
// message; stale entries elsewhere are purged by an asynchronous
// cleanup broadcast and are also rejected on use because every use
// contacts the owner.
//
// Storage model: both the capability space and the revocation tree are
// paged slabs addressed by {index, generation} handles. The low bits
// of a cid (or ObjectID) select a slot, the high bits carry the slot's
// generation at mint time. A handle is valid only while the slot's
// current generation matches, so OS-initiated removals (revocation
// cleanup, stale-epoch purges) can bump the generation and recycle the
// slot: the old handle stays permanently invalid without the slot
// leaking. Slabs are paged (arrays behind pointers) so entry and node
// addresses are stable across growth — hot paths may hold pointers
// into the slab without copying.
package cap

import "fmt"

// ControllerID addresses a FractOS Controller. IDs are assigned by the
// deployment (the operator pre-deploys Controllers).
type ControllerID uint32

// ObjectID names an object within its owning Controller. It is a slab
// handle: the low 32 bits are a slot selector (index+1, so 0 stays the
// invalid ID), the high 32 bits are the slot generation at creation.
// Fresh slots mint generation-0 IDs, which coincide exactly with a
// sequential counter — so workloads that never remove objects see the
// same ObjectID values a naive counter would produce.
type ObjectID uint64

// Epoch is a Controller reboot counter. It increases monotonically on
// every Controller restart; capabilities minted under an older epoch
// are implicitly revoked (a simple form of Lamport timestamp, §3.6).
type Epoch uint32

// ProcID names a FractOS Process (application or device adaptor).
type ProcID uint64

// CapID is a Process-local capability index ("cid"). 0 is never a
// valid cid. Like ObjectID it is a slab handle: the low capIdxBits
// bits select a slot (index+1), the high capGenBits bits carry the
// slot generation. Generation-0 cids equal index+1, matching the
// sequential cids the Process observed before slots ever recycled.
type CapID uint32

// NilCap is the invalid capability index.
const NilCap CapID = 0

// cid handle layout: 24 index bits (16M live caps per space), 8
// generation bits. A slot whose generation saturates is retired
// rather than wrapped, so a purged cid can never alias a later entry.
const (
	capIdxBits = 24
	capIdxMask = 1<<capIdxBits - 1
	capMaxGen  = 1<<(32-capIdxBits) - 1
)

// objGenShift splits an ObjectID into {generation, index+1}.
const objGenShift = 32

// Kind discriminates the two FractOS object types.
type Kind uint8

const (
	// KindMemory is a Memory object: a registered buffer.
	KindMemory Kind = iota + 1
	// KindRequest is a Request object: an invocable RPC endpoint with
	// preset arguments.
	KindRequest
)

func (k Kind) String() string {
	switch k {
	case KindMemory:
		return "memory"
	case KindRequest:
		return "request"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Rights is a bitmask of authorities a capability conveys. Diminish
// and delegation may only ever clear bits, never set them.
type Rights uint8

const (
	// Read permits reading the memory object (source of memory_copy).
	Read Rights = 1 << iota
	// Write permits writing the memory object (target of memory_copy).
	Write
	// Invoke permits request_invoke on a Request object.
	Invoke
	// Grant permits delegating the capability onward (passing it as a
	// Request argument) and deriving from it.
	Grant
)

// All is the full rights mask appropriate for any object kind.
const All = Read | Write | Invoke | Grant

// MemRights are the rights meaningful for Memory objects.
const MemRights = Read | Write | Grant

// ReqRights are the rights meaningful for Request objects.
const ReqRights = Invoke | Grant

func (r Rights) String() string {
	b := []byte("----")
	if r&Read != 0 {
		b[0] = 'r'
	}
	if r&Write != 0 {
		b[1] = 'w'
	}
	if r&Invoke != 0 {
		b[2] = 'i'
	}
	if r&Grant != 0 {
		b[3] = 'g'
	}
	return string(b)
}

// Has reports whether r includes all rights in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// Diminish returns r with the drop bits cleared. The result is always
// a subset of r (the monotonicity invariant the property tests check).
func (r Rights) Diminish(drop Rights) Rights { return r &^ drop }

// Ref is the global, location-independent name of a FractOS object:
// the owning Controller, the object ID there, and the epoch the
// reference was minted under.
type Ref struct {
	Ctrl  ControllerID
	Obj   ObjectID
	Epoch Epoch
}

// IsZero reports whether the Ref is the zero (invalid) reference.
func (r Ref) IsZero() bool { return r == Ref{} }

func (r Ref) String() string {
	return fmt.Sprintf("ref(c%d/o%d/e%d)", r.Ctrl, r.Obj, r.Epoch)
}

// Entry is one slot of a Process's capability space, maintained by the
// Process's Controller on its behalf.
type Entry struct {
	Ref    Ref
	Kind   Kind
	Rights Rights
	// Size caches the extent of a Memory object so the Process can
	// size buffers without a round trip; authoritative checks still
	// happen at the owner.
	Size uint64
	// Monitored marks capabilities derived from a monitor_delegate
	// target: further delegations must notify the owner (§3.6).
	Monitored bool
	// Leased marks entries whose object is a monitor_delegatee child
	// created specifically for this holder: if the holder fails, its
	// Controller revokes the child so the delegator observes the
	// failure (§3.6's failure-translation model).
	Leased bool
	// Expire, when non-zero, is the virtual-time deadline after which
	// the lease GC treats a Leased entry as abandoned and fires the
	// §3.6 failure-translation path for it. Stamped by the Controller
	// at install time from its lease-TTL configuration.
	Expire int64
}

// spacePageBits sizes Space slab pages: 512 entries per page keeps
// page allocations around 32KB while bounding the page directory to
// index/512 pointers.
const spacePageBits = 9

type spacePage [1 << spacePageBits]capSlot

// capSlot is one slab slot of a Space: the entry, the slot's current
// generation, and whether it is live. gen persists across reuse so a
// recycled slot mints a distinguishable cid after an OS-side purge.
type capSlot struct {
	e    Entry
	gen  uint32
	live bool
}

// Space is a Process's capability space: a paged slab of entries
// addressed by {index, generation} cids. Slots dropped by the Process
// are reused under the same generation (the Process surrendered the
// cid, so handing the identical cid back is safe and keeps spaces
// compact); slots purged by the OS are reused under a bumped
// generation, so the purged cid stays permanently invalid.
type Space struct {
	pages []*spacePage
	free  []uint32 // reusable slot indices, LIFO
	next  uint32   // high-water slot count
	live  int
}

// NewSpace returns an empty capability space.
func NewSpace() *Space {
	return &Space{}
}

// slot returns the slot for a 0-based index, which must be < s.next.
func (s *Space) slot(idx uint32) *capSlot {
	return &s.pages[idx>>spacePageBits][idx&(1<<spacePageBits-1)]
}

// Install adds an entry and returns its new cid, or NilCap if the
// space has exhausted its 16M-slot index range.
func (s *Space) Install(e Entry) CapID {
	var idx uint32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		if s.next > capIdxMask-1 {
			return NilCap
		}
		idx = s.next
		s.next++
		if int(idx>>spacePageBits) == len(s.pages) {
			s.pages = append(s.pages, new(spacePage))
		}
	}
	sl := s.slot(idx)
	sl.e = e
	sl.live = true
	s.live++
	return CapID(sl.gen<<capIdxBits | (idx + 1))
}

// lookupSlot resolves a cid to its slot, or nil if the cid is invalid,
// out of range, freed, or from a superseded generation.
//
//fractos:hotpath
func (s *Space) lookupSlot(id CapID) *capSlot {
	u := uint32(id) & capIdxMask
	if u == 0 || u > s.next {
		return nil
	}
	sl := s.slot(u - 1)
	if !sl.live || sl.gen != uint32(id)>>capIdxBits {
		return nil
	}
	return sl
}

// Lookup returns the entry for cid.
func (s *Space) Lookup(id CapID) (Entry, bool) {
	sl := s.lookupSlot(id)
	if sl == nil {
		return Entry{}, false
	}
	return sl.e, true
}

// Peek returns a pointer to the live entry for cid, or nil. The
// pointer is stable across Install (the slab is paged, never
// reallocated) but is invalidated by Drop/PurgeRefs of the same cid;
// hot paths must not retain it across a yield.
//
//fractos:hotpath
func (s *Space) Peek(id CapID) *Entry {
	sl := s.lookupSlot(id)
	if sl == nil {
		return nil
	}
	return &sl.e
}

// Update replaces the entry for an existing cid.
func (s *Space) Update(id CapID, e Entry) bool {
	sl := s.lookupSlot(id)
	if sl == nil {
		return false
	}
	sl.e = e
	return true
}

// Drop removes cid from the space, freeing the slot for reuse.
//
// The generation is deliberately NOT bumped: the Process itself
// surrendered the cid, so reissuing the identical cid for the next
// Install is safe (POSIX fd semantics) and keeps generation bits in
// reserve for OS-initiated purges.
func (s *Space) Drop(id CapID) bool {
	sl := s.lookupSlot(id)
	if sl == nil {
		return false
	}
	sl.live = false
	sl.e = Entry{}
	s.live--
	s.free = append(s.free, uint32(id)&capIdxMask-1)
	return true
}

// Purge removes a single cid the way PurgeRefs removes matching
// entries: the removal is OS-initiated (the Process may still hold the
// cid), so the slot recycles under a bumped generation — or retires if
// the generation counter saturates — and the purged cid stays
// permanently invalid. Used by the lease GC, which knows the exact cid
// it is expiring and must not pay a full-space scan.
func (s *Space) Purge(id CapID) bool {
	sl := s.lookupSlot(id)
	if sl == nil {
		return false
	}
	sl.live = false
	sl.e = Entry{}
	s.live--
	if sl.gen < capMaxGen {
		sl.gen++
		s.free = append(s.free, uint32(id)&capIdxMask-1)
	}
	return true
}

// Len reports the number of live entries.
func (s *Space) Len() int { return s.live }

// Slots reports the slab's high-water slot count — the number of slot
// positions ever allocated, reused or not. Soak tests use it to prove
// churn reuses slots instead of growing the slab.
func (s *Space) Slots() int { return int(s.next) }

// ForEach visits every live entry in slot order. Slot order is
// deterministic but not install order once slots recycle; use it only
// for operations that are order-insensitive (e.g. cleanup).
func (s *Space) ForEach(fn func(CapID, Entry)) {
	for idx := uint32(0); idx < s.next; idx++ {
		sl := s.slot(idx)
		if sl.live {
			fn(CapID(sl.gen<<capIdxBits|(idx+1)), sl.e)
		}
	}
}

// Sweep visits up to max slot positions starting at *cursor, calling
// fn for each live entry, and advances the cursor (wrapping at the
// high-water mark). It lets a background task — the lease GC — scan a
// huge space incrementally with bounded work per tick. fn receives a
// slab pointer valid only for the duration of the call.
func (s *Space) Sweep(cursor *uint32, max int, fn func(CapID, *Entry)) {
	if s.next == 0 {
		return
	}
	if *cursor >= s.next {
		*cursor = 0
	}
	for i := 0; i < max; i++ {
		idx := *cursor
		sl := s.slot(idx)
		if sl.live {
			fn(CapID(sl.gen<<capIdxBits|(idx+1)), &sl.e)
		}
		*cursor++
		if *cursor >= s.next {
			*cursor = 0
		}
	}
}

// PurgeRefs removes every entry whose Ref matches pred, returning the
// removed cids. Used by the revocation cleanup broadcast and the
// stale-epoch purge.
//
// Unlike Drop, purged slots recycle under a bumped generation: the
// removal is initiated by the OS, not the Process, so the Process may
// still hold the cid — the bump keeps that stale handle permanently
// invalid while letting the slot itself be reused. A slot whose
// generation counter saturates is retired instead of wrapped, so
// aliasing is impossible even after 255 purges of one slot.
func (s *Space) PurgeRefs(pred func(Ref) bool) []CapID {
	var dropped []CapID
	for idx := uint32(0); idx < s.next; idx++ {
		sl := s.slot(idx)
		if !sl.live || !pred(sl.e.Ref) {
			continue
		}
		dropped = append(dropped, CapID(sl.gen<<capIdxBits|(idx+1)))
		sl.live = false
		sl.e = Entry{}
		s.live--
		if sl.gen < capMaxGen {
			sl.gen++
			s.free = append(s.free, idx)
		}
	}
	return dropped
}

package cap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: under random install/drop/update churn, a Space behaves
// exactly like a map with fd-style slot reuse — every lookup returns
// the most recently installed entry for that slot, live cids are
// unique, and Len always matches the model.
func TestSpaceShadowModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		model := map[CapID]Entry{}
		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0: // install
				e := Entry{
					Ref:    Ref{Ctrl: ControllerID(rng.Intn(4)), Obj: ObjectID(rng.Intn(1000))},
					Kind:   Kind(1 + rng.Intn(2)),
					Rights: Rights(rng.Intn(16)),
					Size:   uint64(rng.Intn(4096)),
				}
				id := s.Install(e)
				if _, taken := model[id]; taken {
					return false // reused a live cid
				}
				model[id] = e
			case 1: // drop a random live entry
				if len(model) == 0 {
					continue
				}
				id := pickKey(rng, model)
				if !s.Drop(id) {
					return false
				}
				delete(model, id)
			case 2: // update a random live entry
				if len(model) == 0 {
					continue
				}
				id := pickKey(rng, model)
				e := model[id]
				e.Rights = Rights(rng.Intn(16))
				if !s.Update(id, e) {
					return false
				}
				model[id] = e
			}
			if s.Len() != len(model) {
				return false
			}
		}
		// Full final comparison.
		for id, want := range model {
			got, ok := s.Lookup(id)
			if !ok || got != want {
				return false
			}
		}
		count := 0
		s.ForEach(func(id CapID, e Entry) {
			if model[id] != e {
				count = -1 << 30
			}
			count++
		})
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// pickKey selects a deterministic pseudo-random key: smallest key with
// rank rng.Intn(len) in sorted order.
func pickKey(rng *rand.Rand, m map[CapID]Entry) CapID {
	keys := make([]CapID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys[rng.Intn(len(keys))]
}

package cap

import (
	"math/rand"
	"runtime/debug"
	"testing"
	"testing/quick"
)

// TestRevokeDeepChainIterative is the stack-safety regression for the
// iterative Revoke: a delegation chain one million levels deep must
// revoke under a deliberately small stack ceiling. The recursive walk
// this replaced grew a frame per level and died with an unrecoverable
// stack overflow long before 1e6.
func TestRevokeDeepChainIterative(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-chain soak skipped in -short")
	}
	old := debug.SetMaxStack(8 << 20) // 8 MB: ~80k recursive frames at most
	defer debug.SetMaxStack(old)

	const depth = 1_000_000
	tr := NewTree()
	n := tr.Create(nil)
	root := n.ID
	for i := 1; i < depth; i++ {
		n = tr.Derive(n.ID, nil)
		if n == nil {
			t.Fatalf("Derive failed at depth %d", i)
		}
	}
	revoked := tr.Revoke(root)
	if len(revoked) != depth {
		t.Fatalf("revoked %d nodes, want %d", len(revoked), depth)
	}
	if tr.LiveLen() != 0 {
		t.Fatalf("LiveLen = %d after full revocation", tr.LiveLen())
	}
	// Pre-order over a chain is root-to-leaf creation order.
	for i, nd := range revoked {
		if nd.ID != ObjectID(i+1) {
			t.Fatalf("revocation order broken at %d: got %d", i, nd.ID)
		}
	}
	// Reverse-order removal (the cleanup pass) must also be O(1)/node.
	for i := len(revoked) - 1; i >= 0; i-- {
		tr.Remove(revoked[i].ID)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after removal", tr.Len())
	}
}

// TestRevokeDepthFanoutTree pins the acceptance shape: a depth-1000
// spine where every spine node carries 10 leaf children revokes
// completely, in pre-order, under the same small stack ceiling.
func TestRevokeDepthFanoutTree(t *testing.T) {
	old := debug.SetMaxStack(8 << 20)
	defer debug.SetMaxStack(old)

	const depth, fanout = 1000, 10
	tr := NewTree()
	spine := tr.Create(nil)
	rootID := spine.ID
	want := 0
	for d := 0; d < depth; d++ {
		for f := 0; f < fanout; f++ {
			if tr.Derive(spine.ID, nil) == nil {
				t.Fatal("leaf Derive failed")
			}
			want++
		}
		if d < depth-1 {
			spine = tr.Derive(spine.ID, nil)
			want++
		}
	}
	want++ // the root itself
	revoked := tr.Revoke(rootID)
	if len(revoked) != want {
		t.Fatalf("revoked %d nodes, want %d", len(revoked), want)
	}
	if tr.LiveLen() != 0 {
		t.Fatalf("LiveLen = %d after revocation", tr.LiveLen())
	}
	// Pre-order with tail-appended children visits nodes in exactly
	// creation order for this construction.
	for i, nd := range revoked {
		if nd.ID != ObjectID(i+1) {
			t.Fatalf("pre-order broken at %d: got %d", i, nd.ID)
		}
	}
}

// TestRevokeSkipsPreRevokedSubtrees: revoking an ancestor after a
// descendant subtree was already revoked must return only the newly
// invalidated nodes, exactly like the recursive walk did.
func TestRevokeSkipsPreRevokedSubtrees(t *testing.T) {
	tr := NewTree()
	root := tr.Create(nil)
	a := tr.Derive(root.ID, nil)
	aa := tr.Derive(a.ID, nil)
	b := tr.Derive(root.ID, nil)
	if got := len(tr.Revoke(a.ID)); got != 2 {
		t.Fatalf("first revoke took %d nodes, want 2", got)
	}
	revoked := tr.Revoke(root.ID)
	if len(revoked) != 2 {
		t.Fatalf("second revoke took %d nodes, want 2 (root, b)", len(revoked))
	}
	if revoked[0].ID != root.ID || revoked[1].ID != b.ID {
		t.Fatalf("unexpected revocation order: %d, %d", revoked[0].ID, revoked[1].ID)
	}
	_ = aa
}

// TestTreeCountersMaintained pins that Len and LiveLen are O(1)
// maintained counters that stay exact through create/derive/revoke/
// remove churn, cross-checked against a full ForEach count.
func TestTreeCountersMaintained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		var ids []ObjectID
		ids = append(ids, tr.Create(nil).ID)
		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				if n := tr.Derive(ids[rng.Intn(len(ids))], nil); n != nil {
					ids = append(ids, n.ID)
				}
			case 2:
				tr.Revoke(ids[rng.Intn(len(ids))])
			case 3:
				// Remove any revoked leaf (no live bookkeeping).
				id := ids[rng.Intn(len(ids))]
				if n, ok := tr.GetAny(id); ok && n.Revoked && !n.HasChildren() {
					tr.Remove(id)
				}
			}
			total, live := 0, 0
			tr.ForEach(func(n *Node) {
				total++
				if !n.Revoked {
					live++
				}
			})
			if tr.Len() != total || tr.LiveLen() != live {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeRemoveMiddleChildUnlink: the intrusive sibling unlink must
// keep the child list consistent when removing first, middle, and last
// children, pinned by the pre-order of a subsequent parent revocation.
func TestTreeRemoveMiddleChildUnlink(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		tr := NewTree()
		root := tr.Create(nil)
		kids := []*Node{
			tr.Derive(root.ID, nil), tr.Derive(root.ID, nil), tr.Derive(root.ID, nil),
		}
		tr.Revoke(kids[victim].ID)
		tr.Remove(kids[victim].ID)
		revoked := tr.Revoke(root.ID)
		if len(revoked) != 3 {
			t.Fatalf("victim %d: revoked %d nodes, want 3", victim, len(revoked))
		}
		want := []ObjectID{root.ID}
		for i, k := range kids {
			if i != victim {
				want = append(want, k.ID)
			}
		}
		for i, nd := range revoked {
			if nd.ID != want[i] {
				t.Fatalf("victim %d: order[%d] = %d, want %d", victim, i, nd.ID, want[i])
			}
		}
	}
}

// TestObjectIDGenerationNoAlias: a removed ObjectID must never resolve
// again, even after its slab slot is recycled by later creations — the
// generation bits in the ID fence stale Refs the way cid generations
// fence stale capability handles.
func TestObjectIDGenerationNoAlias(t *testing.T) {
	tr := NewTree()
	n := tr.Create(nil)
	stale := n.ID
	tr.Revoke(stale)
	tr.Remove(stale)
	for i := 0; i < 50; i++ {
		fresh := tr.Create(nil)
		if fresh.ID == stale {
			t.Fatalf("removed ObjectID %d reissued", stale)
		}
	}
	if _, ok := tr.GetAny(stale); ok {
		t.Fatal("removed ObjectID resolves")
	}
	if tr.Revoke(stale) != nil {
		t.Fatal("removed ObjectID revocable")
	}
}

// TestCidGenerationAliasingProperty drives random interleavings of
// install, drop, and purge against a shadow model and asserts the
// generation contract: a cid observed dead (dropped or purged) may be
// reissued only through Drop (fd semantics — the holder surrendered
// it); a purged cid must never come back, and must never resolve to
// any entry installed later, no matter how slots recycle underneath.
func TestCidGenerationAliasingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		live := map[CapID]ObjectID{} // cid -> installed payload marker
		purged := map[CapID]bool{}
		var liveIDs []CapID
		nextObj := ObjectID(1)
		refresh := func() {
			liveIDs = liveIDs[:0]
			for id := range live {
				liveIDs = append(liveIDs, id)
			}
			for i := 0; i < len(liveIDs); i++ {
				for j := i + 1; j < len(liveIDs); j++ {
					if liveIDs[j] < liveIDs[i] {
						liveIDs[i], liveIDs[j] = liveIDs[j], liveIDs[i]
					}
				}
			}
		}
		for op := 0; op < 400; op++ {
			switch rng.Intn(5) {
			case 0, 1: // install
				obj := nextObj
				nextObj++
				id := s.Install(Entry{Ref: Ref{Ctrl: 9, Obj: obj}})
				if purged[id] {
					return false // purged cid reissued
				}
				if _, taken := live[id]; taken {
					return false // live cid reissued
				}
				live[id] = obj
			case 2: // drop
				refresh()
				if len(liveIDs) == 0 {
					continue
				}
				id := liveIDs[rng.Intn(len(liveIDs))]
				if !s.Drop(id) {
					return false
				}
				delete(live, id)
			case 3: // purge one entry by ref
				refresh()
				if len(liveIDs) == 0 {
					continue
				}
				id := liveIDs[rng.Intn(len(liveIDs))]
				obj := live[id]
				got := s.PurgeRefs(func(r Ref) bool { return r.Obj == obj })
				if len(got) != 1 || got[0] != id {
					return false
				}
				delete(live, id)
				purged[id] = true
			case 4: // single-cid purge (the lease-GC path)
				refresh()
				if len(liveIDs) == 0 {
					continue
				}
				id := liveIDs[rng.Intn(len(liveIDs))]
				if !s.Purge(id) {
					return false
				}
				delete(live, id)
				purged[id] = true
			}
			// No dead cid — dropped or purged — may resolve, and every
			// live cid must resolve to its own entry.
			for id := range purged {
				if _, ok := s.Lookup(id); ok {
					return false
				}
			}
			if s.Len() != len(live) {
				return false
			}
		}
		for id, obj := range live {
			e, ok := s.Lookup(id)
			if !ok || e.Ref.Obj != obj {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// FuzzCidGenerationAliasing is the fuzz-shaped version of the aliasing
// property: ops decoded from raw bytes, with the invariant that a
// purged cid never aliases a live entry checked after every step.
func FuzzCidGenerationAliasing(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3, 0, 1, 2})
	f.Add([]byte{0, 1, 3, 3, 0, 0, 2, 1, 0, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		s := NewSpace()
		live := map[CapID]bool{}
		purged := map[CapID]bool{}
		var order []CapID // deterministic pick order
		pick := func(b byte) (CapID, bool) {
			if len(order) == 0 {
				return NilCap, false
			}
			return order[int(b)%len(order)], true
		}
		unorder := func(id CapID) {
			for i, v := range order {
				if v == id {
					order = append(order[:i], order[i+1:]...)
					return
				}
			}
		}
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%3, ops[i+1]
			switch op {
			case 0:
				id := s.Install(Entry{Ref: Ref{Ctrl: 1, Obj: ObjectID(i + 1)}})
				if purged[id] {
					t.Fatalf("purged cid %d reissued", id)
				}
				if live[id] {
					t.Fatalf("live cid %d reissued", id)
				}
				live[id] = true
				order = append(order, id)
			case 1:
				if id, ok := pick(arg); ok {
					s.Drop(id)
					delete(live, id)
					unorder(id)
				}
			case 2:
				if id, ok := pick(arg); ok {
					s.Purge(id)
					delete(live, id)
					purged[id] = true
					unorder(id)
				}
			}
			for id := range purged {
				if _, ok := s.Lookup(id); ok {
					t.Fatalf("purged cid %d resolves", id)
				}
			}
		}
	})
}

// TestSpaceMillionCapSoak: the slab sustains a million live
// capabilities, and sustained drop/install churn on top of that
// population reuses slots instead of growing the slab — steady-state
// memory is flat by construction when the high-water mark is flat.
func TestSpaceMillionCapSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("million-cap soak skipped in -short")
	}
	const liveCaps = 1_000_000
	s := NewSpace()
	ids := make([]CapID, liveCaps)
	for i := range ids {
		ids[i] = s.Install(Entry{Ref: Ref{Ctrl: 1, Obj: ObjectID(i + 1)}, Kind: KindMemory})
		if ids[i] == NilCap {
			t.Fatalf("Install failed at %d", i)
		}
	}
	if s.Len() != liveCaps {
		t.Fatalf("Len = %d, want %d", s.Len(), liveCaps)
	}
	highWater := s.Slots()
	if highWater != liveCaps {
		t.Fatalf("high water = %d after %d installs", highWater, liveCaps)
	}
	// Churn 2M drop+install pairs across the population: the slab must
	// not grow a single slot.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2_000_000; i++ {
		j := rng.Intn(liveCaps)
		if !s.Drop(ids[j]) {
			t.Fatalf("Drop failed at churn %d", i)
		}
		ids[j] = s.Install(Entry{Ref: Ref{Ctrl: 1, Obj: ObjectID(i)}, Kind: KindRequest})
	}
	if s.Slots() != highWater {
		t.Fatalf("slab grew under churn: %d slots, had %d", s.Slots(), highWater)
	}
	if s.Len() != liveCaps {
		t.Fatalf("Len = %d after churn, want %d", s.Len(), liveCaps)
	}
	// Purge-driven churn also recycles (generation-bumped) instead of
	// leaking slots: the pre-slab Space retired every purged slot
	// forever, growing without bound under lease-GC-style purges.
	for round := 0; round < 3; round++ {
		for i := 0; i < 1000; i++ {
			j := i * 997 % liveCaps
			s.Purge(ids[j])
			ids[j] = s.Install(Entry{Ref: Ref{Ctrl: 2, Obj: ObjectID(i + 1)}})
		}
	}
	if s.Slots() != highWater {
		t.Fatalf("slab grew under purge churn: %d slots, had %d", s.Slots(), highWater)
	}
	// Steady-state churn allocates nothing: slots and free-list storage
	// are all reused.
	if avg := testing.AllocsPerRun(1000, func() {
		s.Drop(ids[0])
		ids[0] = s.Install(Entry{Ref: Ref{Ctrl: 3, Obj: 7}})
	}); avg != 0 {
		t.Errorf("steady-state churn allocates %.1f allocs/op, want 0", avg)
	}
}

package cap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRightsString(t *testing.T) {
	cases := []struct {
		r    Rights
		want string
	}{
		{0, "----"},
		{Read, "r---"},
		{Read | Write, "rw--"},
		{Invoke | Grant, "--ig"},
		{All, "rwig"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Rights(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRightsHas(t *testing.T) {
	r := Read | Grant
	if !r.Has(Read) || !r.Has(Grant) || !r.Has(Read|Grant) {
		t.Error("Has should accept subsets")
	}
	if r.Has(Write) || r.Has(Read|Write) {
		t.Error("Has should reject non-subsets")
	}
	if !r.Has(0) {
		t.Error("every rights value has the empty set")
	}
}

// Property: diminish never adds rights, is idempotent, and dropping
// everything yields the empty set.
func TestDiminishMonotone(t *testing.T) {
	f := func(r, drop uint8) bool {
		orig := Rights(r) & All
		dim := orig.Diminish(Rights(drop))
		if dim&^orig != 0 {
			return false // gained a right
		}
		if dim.Diminish(Rights(drop)) != dim {
			return false // not idempotent
		}
		return orig.Diminish(All) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceInstallLookupDrop(t *testing.T) {
	s := NewSpace()
	e := Entry{Ref: Ref{Ctrl: 1, Obj: 42}, Kind: KindMemory, Rights: Read, Size: 100}
	id := s.Install(e)
	if id == NilCap {
		t.Fatal("Install returned NilCap")
	}
	got, ok := s.Lookup(id)
	if !ok || got.Ref.Obj != 42 || got.Size != 100 {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if !s.Drop(id) {
		t.Fatal("Drop failed")
	}
	if _, ok := s.Lookup(id); ok {
		t.Fatal("entry survived Drop")
	}
	if s.Drop(id) {
		t.Fatal("double Drop succeeded")
	}
}

func TestSpaceSlotReuse(t *testing.T) {
	s := NewSpace()
	a := s.Install(Entry{Kind: KindMemory})
	b := s.Install(Entry{Kind: KindMemory})
	s.Drop(a)
	c := s.Install(Entry{Kind: KindRequest})
	if c != a {
		t.Errorf("expected slot reuse: got %d, want %d", c, a)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	_ = b
}

func TestSpaceUpdate(t *testing.T) {
	s := NewSpace()
	id := s.Install(Entry{Kind: KindMemory, Rights: All})
	if !s.Update(id, Entry{Kind: KindMemory, Rights: Read}) {
		t.Fatal("Update failed")
	}
	e, _ := s.Lookup(id)
	if e.Rights != Read {
		t.Errorf("Rights = %v, want Read", e.Rights)
	}
	if s.Update(999, Entry{}) {
		t.Error("Update of missing cid succeeded")
	}
}

// TestPurgedSlotsNeverRecycled: OS-initiated purges tombstone the
// slot; only explicit Drops recycle. A stale cid held across a purge
// must never alias a later capability.
func TestPurgedSlotsNeverRecycled(t *testing.T) {
	s := NewSpace()
	stale := s.Install(Entry{Ref: Ref{Ctrl: 1, Obj: 1}})
	s.PurgeRefs(func(r Ref) bool { return r.Obj == 1 })
	// Install many new entries: none may land on the stale cid.
	for i := 0; i < 50; i++ {
		if id := s.Install(Entry{Ref: Ref{Ctrl: 1, Obj: ObjectID(100 + i)}}); id == stale {
			t.Fatalf("purged cid %d recycled onto a new capability", stale)
		}
	}
	if _, ok := s.Lookup(stale); ok {
		t.Fatal("purged cid resolves")
	}
	// Explicit Drop still recycles.
	d := s.Install(Entry{Ref: Ref{Ctrl: 2, Obj: 7}})
	s.Drop(d)
	if id := s.Install(Entry{Ref: Ref{Ctrl: 2, Obj: 8}}); id != d {
		t.Fatalf("dropped cid %d not recycled (got %d)", d, id)
	}
}

func TestSpacePurgeRefs(t *testing.T) {
	s := NewSpace()
	for i := 0; i < 10; i++ {
		s.Install(Entry{Ref: Ref{Ctrl: ControllerID(i % 2), Obj: ObjectID(i)}})
	}
	dropped := s.PurgeRefs(func(r Ref) bool { return r.Ctrl == 0 })
	if len(dropped) != 5 || s.Len() != 5 {
		t.Fatalf("dropped %d, remaining %d", len(dropped), s.Len())
	}
	s.ForEach(func(_ CapID, e Entry) {
		if e.Ref.Ctrl == 0 {
			t.Error("purged ref survived")
		}
	})
}

func TestTreeCreateDeriveGet(t *testing.T) {
	tr := NewTree()
	root := tr.Create("root")
	child := tr.Derive(root.ID, "child")
	if child == nil || child.Parent != root.ID {
		t.Fatalf("Derive = %+v", child)
	}
	if _, ok := tr.Get(child.ID); !ok {
		t.Fatal("Get(child) failed")
	}
	if tr.Derive(999, "x") != nil {
		t.Error("Derive from missing parent succeeded")
	}
}

func TestTreeRevokeSubtree(t *testing.T) {
	tr := NewTree()
	root := tr.Create(nil)
	a := tr.Derive(root.ID, nil)
	b := tr.Derive(root.ID, nil)
	aa := tr.Derive(a.ID, nil)
	revoked := tr.Revoke(a.ID)
	if len(revoked) != 2 {
		t.Fatalf("revoked %d nodes, want 2", len(revoked))
	}
	if _, ok := tr.Get(a.ID); ok {
		t.Error("a still live")
	}
	if _, ok := tr.Get(aa.ID); ok {
		t.Error("aa still live")
	}
	if _, ok := tr.Get(b.ID); !ok {
		t.Error("sibling b was revoked")
	}
	if _, ok := tr.Get(root.ID); !ok {
		t.Error("parent root was revoked")
	}
	// Deriving from a revoked parent fails.
	if tr.Derive(a.ID, nil) != nil {
		t.Error("Derive from revoked parent succeeded")
	}
	// Double revoke is a no-op.
	if tr.Revoke(a.ID) != nil {
		t.Error("double revoke returned nodes")
	}
}

func TestTreeRemoveAfterRevoke(t *testing.T) {
	tr := NewTree()
	root := tr.Create(nil)
	a := tr.Derive(root.ID, nil)
	revoked := tr.Revoke(a.ID)
	for i := len(revoked) - 1; i >= 0; i-- {
		tr.Remove(revoked[i].ID)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1 (root only)", tr.Len())
	}
	if root.HasChildren() {
		t.Error("root still has children after removal")
	}
	// Removing a live node must be refused.
	tr.Remove(root.ID)
	if _, ok := tr.Get(root.ID); !ok {
		t.Error("Remove erased a live node")
	}
}

func TestTreeAncestor(t *testing.T) {
	tr := NewTree()
	root := tr.Create(nil)
	a := tr.Derive(root.ID, nil)
	aa := tr.Derive(a.ID, nil)
	b := tr.Derive(root.ID, nil)
	if !tr.Ancestor(root.ID, aa.ID) || !tr.Ancestor(a.ID, aa.ID) || !tr.Ancestor(aa.ID, aa.ID) {
		t.Error("ancestor chain broken")
	}
	if tr.Ancestor(b.ID, aa.ID) {
		t.Error("b is not an ancestor of aa")
	}
}

// Property: revoking a random node in a random tree invalidates
// exactly the subtree rooted at it — every revoked node has the target
// as an ancestor, and every surviving node does not.
func TestTreeRevokeExactSubtreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		ids := []ObjectID{tr.Create(nil).ID}
		for i := 0; i < 40; i++ {
			parent := ids[rng.Intn(len(ids))]
			if n := tr.Derive(parent, nil); n != nil {
				ids = append(ids, n.ID)
			}
		}
		target := ids[rng.Intn(len(ids))]
		tr.Revoke(target)
		for _, id := range ids {
			_, live := tr.Get(id)
			inSubtree := tr.Ancestor(target, id)
			if live == inSubtree {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveLen(t *testing.T) {
	tr := NewTree()
	root := tr.Create(nil)
	tr.Derive(root.ID, nil)
	c := tr.Derive(root.ID, nil)
	tr.Revoke(c.ID)
	if tr.LiveLen() != 2 {
		t.Errorf("LiveLen = %d, want 2", tr.LiveLen())
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

func TestGetAnyReturnsRevoked(t *testing.T) {
	tr := NewTree()
	n := tr.Create(nil)
	tr.Revoke(n.ID)
	if _, ok := tr.Get(n.ID); ok {
		t.Error("Get returned revoked node")
	}
	if _, ok := tr.GetAny(n.ID); !ok {
		t.Error("GetAny missed revoked node")
	}
}

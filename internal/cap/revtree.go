package cap

// Tree is the owner-side object registry of one Controller: every
// Memory and Request object it owns, linked into revocation trees.
//
// FractOS replaces per-delegation capability trees with a much smaller
// hierarchy of individually revocable *objects* (an adaptation of
// Redell's caretaker pattern, §3.5): derivation (memory_diminish,
// request_create-from-existing, cap_create_revtree) records the new
// object as a child of its source, and revoking any object eagerly
// invalidates its entire subtree — all locally, in the owning
// Controller, so revocation is immediate and requires exactly one
// message from the revoker.
//
// Storage: nodes live in a paged slab addressed by {index, generation}
// ObjectIDs (see the package comment). Child sets are intrusive
// first/last-child + prev/next-sibling links — no per-node []ObjectID
// slice — so Derive, Remove, and the sibling walk in Revoke are all
// allocation-free and O(1) per edge. A separate intrusive sequence
// list preserves creation order for ForEach. Node pointers returned by
// the Tree are stable across growth (pages never move) but are
// invalidated by Remove of that node.
//
// Tree is a passive data structure; the Controller serializes access.
type Tree struct {
	pages   []*treePage
	free    []uint32 // reusable slot indices, LIFO
	next    uint32   // high-water slot count
	len     int      // registered nodes (incl. revoked awaiting cleanup)
	live    int      // non-revoked nodes
	seqHead ObjectID // creation-order list
	seqTail ObjectID
}

// treePageBits sizes Tree slab pages: 256 nodes per page.
const treePageBits = 8

type treePage [1 << treePageBits]Node

// Node is one registered object. The zero-valued links use ObjectID 0
// (never a valid ID) as nil.
type Node struct {
	ID      ObjectID
	Parent  ObjectID // 0 = root
	Revoked bool

	// Payload is the Controller's object record (Memory or Request
	// metadata). The tree does not interpret it.
	Payload interface{}

	// Monitoring state (§3.6). MonitorDelegator means delegations of
	// caps to this object must create child nodes and count them;
	// the callback fires when the child count returns to zero.
	MonitorDelegator bool
	DelegateeCount   int
	DelegatorProc    ProcID
	DelegatorCB      uint64
	// MonitorDelegatee marks nodes created on behalf of a delegation
	// of a monitored parent.
	MonitorDelegatee bool

	// Watchers are monitor_receive registrations: (proc, callback)
	// pairs to notify when this object is invalidated.
	Watchers []Watcher

	// Intrusive child list (creation order) and sibling links.
	firstChild, lastChild ObjectID
	prevSib, nextSib      ObjectID
	// Intrusive creation-order sequence list (ForEach order).
	prevSeq, nextSeq ObjectID

	// Slab bookkeeping: gen persists across slot reuse; inUse marks
	// the slot allocated.
	gen   uint32
	inUse bool
}

// HasChildren reports whether any derived object still hangs off n.
func (n *Node) HasChildren() bool { return n.firstChild != 0 }

// Watcher is a monitor_receive registration. Ctrl is the Controller
// managing the watching Process, so the owner can route the callback.
type Watcher struct {
	Proc     ProcID
	Ctrl     ControllerID
	Callback uint64
}

// NewTree returns an empty object registry.
func NewTree() *Tree {
	return &Tree{}
}

// at returns the node in slot idx (0-based), which must be < t.next.
func (t *Tree) at(idx uint32) *Node {
	return &t.pages[idx>>treePageBits][idx&(1<<treePageBits-1)]
}

// probe resolves an ObjectID to its slab node, or nil if the ID is
// invalid, freed, or from a superseded generation.
//
//fractos:hotpath
func (t *Tree) probe(id ObjectID) *Node {
	u := uint32(id)
	if u == 0 || u > t.next {
		return nil
	}
	n := t.at(u - 1)
	if !n.inUse || n.gen != uint32(id>>objGenShift) {
		return nil
	}
	return n
}

// Create registers a new root object and returns its node.
func (t *Tree) Create(payload interface{}) *Node {
	return t.insert(0, payload)
}

// Derive registers a new object as a child of parent. It returns nil
// if the parent does not exist or is revoked.
func (t *Tree) Derive(parent ObjectID, payload interface{}) *Node {
	p := t.probe(parent)
	if p == nil || p.Revoked {
		return nil
	}
	n := t.insert(parent, payload)
	// Append at the tail of the child list: revocation pre-order then
	// visits children in creation order, matching the semantics the
	// old []ObjectID append produced.
	n.prevSib = p.lastChild
	if p.lastChild != 0 {
		t.probe(p.lastChild).nextSib = n.ID
	} else {
		p.firstChild = n.ID
	}
	p.lastChild = n.ID
	return n
}

func (t *Tree) insert(parent ObjectID, payload interface{}) *Node {
	var idx uint32
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		idx = t.next
		t.next++
		if int(idx>>treePageBits) == len(t.pages) {
			t.pages = append(t.pages, new(treePage))
		}
	}
	n := t.at(idx)
	gen := n.gen
	*n = Node{
		ID:     ObjectID(gen)<<objGenShift | ObjectID(idx+1),
		Parent: parent,
		gen:    gen,
		inUse:  true,
	}
	n.Payload = payload
	// Link at the tail of the creation-order list.
	n.prevSeq = t.seqTail
	if t.seqTail != 0 {
		t.probe(t.seqTail).nextSeq = n.ID
	} else {
		t.seqHead = n.ID
	}
	t.seqTail = n.ID
	t.len++
	t.live++
	return n
}

// Get returns the node for id if it exists and is not revoked.
func (t *Tree) Get(id ObjectID) (*Node, bool) {
	n := t.probe(id)
	if n == nil || n.Revoked {
		return nil, false
	}
	return n, true
}

// GetAny returns the node even if revoked (for cleanup bookkeeping).
func (t *Tree) GetAny(id ObjectID) (*Node, bool) {
	n := t.probe(id)
	return n, n != nil
}

// Probe returns the node for id — revoked or not — or nil. It is the
// allocation-free hot-path variant of Get/GetAny for validation: the
// caller folds the Revoked check into its own fence.
//
//fractos:hotpath
func (t *Tree) Probe(id ObjectID) *Node {
	return t.probe(id)
}

// Revoke invalidates the object and all its descendant objects. It
// returns the nodes invalidated by this call in deterministic
// (pre-order, creation-order) sequence, so the Controller can fire
// monitor callbacks and schedule the cleanup broadcast. Revoking an
// unknown or already revoked object returns nil.
//
// The walk is iterative — threaded through the intrusive child and
// sibling links with O(1) auxiliary space — so revoking a delegation
// chain millions of levels deep cannot grow the goroutine stack
// (the recursive walk it replaces overflowed on deep chains).
func (t *Tree) Revoke(id ObjectID) []*Node {
	root := t.probe(id)
	if root == nil || root.Revoked {
		return nil
	}
	var out []*Node
	for n := root; n != nil; {
		n.Revoked = true
		t.live--
		out = append(out, n)
		n = t.nextPreorder(n, root)
	}
	return out
}

// nextPreorder advances a revocation walk one step: descend to the
// first not-yet-revoked child, else climb toward root taking the next
// unrevoked sibling at each level. Nodes already revoked before this
// Revoke call head fully-revoked subtrees (Revoke always takes a whole
// subtree down), so skipping them skips exactly the pre-revoked
// subtrees the old recursive walk skipped; nodes revoked *during* the
// walk are behind the cursor and never revisited because the walk only
// moves to first-child and next-sibling links.
func (t *Tree) nextPreorder(n, root *Node) *Node {
	for c := n.firstChild; c != 0; {
		cn := t.probe(c)
		if !cn.Revoked {
			return cn
		}
		c = cn.nextSib
	}
	for n != root {
		for s := n.nextSib; s != 0; {
			sn := t.probe(s)
			if !sn.Revoked {
				return sn
			}
			s = sn.nextSib
		}
		n = t.probe(n.Parent)
	}
	return nil
}

// Remove erases a revoked node once the cleanup pass has confirmed no
// capabilities reference it. Only revoked leaf bookkeeping is erased;
// children are assumed removed first (Revoke returns pre-order, so
// removing in reverse order is safe). The slot recycles under a
// bumped generation, so the removed ObjectID — and any stale Ref
// embedding it — stays permanently invalid.
func (t *Tree) Remove(id ObjectID) {
	n := t.probe(id)
	if n == nil || !n.Revoked {
		return
	}
	// O(1) unlink from the parent's child list.
	if p := t.probe(n.Parent); p != nil {
		if n.prevSib != 0 {
			t.probe(n.prevSib).nextSib = n.nextSib
		} else if p.firstChild == id {
			p.firstChild = n.nextSib
		}
		if n.nextSib != 0 {
			t.probe(n.nextSib).prevSib = n.prevSib
		} else if p.lastChild == id {
			p.lastChild = n.prevSib
		}
	}
	// O(1) unlink from the creation-order list.
	if n.prevSeq != 0 {
		t.probe(n.prevSeq).nextSeq = n.nextSeq
	} else if t.seqHead == id {
		t.seqHead = n.nextSeq
	}
	if n.nextSeq != 0 {
		t.probe(n.nextSeq).prevSeq = n.prevSeq
	} else if t.seqTail == id {
		t.seqTail = n.prevSeq
	}
	idx := uint32(id) - 1
	gen := n.gen + 1
	*n = Node{gen: gen}
	t.len--
	t.free = append(t.free, idx)
}

// Len reports the number of registered objects (including revoked ones
// awaiting cleanup). Maintained incrementally; O(1).
func (t *Tree) Len() int { return t.len }

// LiveLen reports the number of non-revoked objects. Maintained
// incrementally; O(1).
func (t *Tree) LiveLen() int { return t.live }

// Slots reports the slab's high-water slot count (see Space.Slots).
func (t *Tree) Slots() int { return int(t.next) }

// ForEach visits every node (live and revoked) in creation order. fn
// may remove the node it is handed, but must not remove other nodes.
func (t *Tree) ForEach(fn func(*Node)) {
	for id := t.seqHead; id != 0; {
		n := t.probe(id)
		id = n.nextSeq
		fn(n)
	}
}

// Ancestor reports whether anc is id itself or one of its ancestors.
func (t *Tree) Ancestor(anc, id ObjectID) bool {
	for id != 0 {
		if id == anc {
			return true
		}
		n := t.probe(id)
		if n == nil {
			return false
		}
		id = n.Parent
	}
	return false
}

package cap

// Tree is the owner-side object registry of one Controller: every
// Memory and Request object it owns, linked into revocation trees.
//
// FractOS replaces per-delegation capability trees with a much smaller
// hierarchy of individually revocable *objects* (an adaptation of
// Redell's caretaker pattern, §3.5): derivation (memory_diminish,
// request_create-from-existing, cap_create_revtree) records the new
// object as a child of its source, and revoking any object eagerly
// invalidates its entire subtree — all locally, in the owning
// Controller, so revocation is immediate and requires exactly one
// message from the revoker.
//
// Tree is a passive data structure; the Controller serializes access.
type Tree struct {
	nodes  map[ObjectID]*Node
	nextID ObjectID
}

// Node is one registered object.
type Node struct {
	ID       ObjectID
	Parent   ObjectID // 0 = root
	Children []ObjectID
	Revoked  bool

	// Payload is the Controller's object record (Memory or Request
	// metadata). The tree does not interpret it.
	Payload interface{}

	// Monitoring state (§3.6). MonitorDelegator means delegations of
	// caps to this object must create child nodes and count them;
	// the callback fires when the child count returns to zero.
	MonitorDelegator bool
	DelegateeCount   int
	DelegatorProc    ProcID
	DelegatorCB      uint64
	// MonitorDelegatee marks nodes created on behalf of a delegation
	// of a monitored parent.
	MonitorDelegatee bool

	// Watchers are monitor_receive registrations: (proc, callback)
	// pairs to notify when this object is invalidated.
	Watchers []Watcher
}

// Watcher is a monitor_receive registration. Ctrl is the Controller
// managing the watching Process, so the owner can route the callback.
type Watcher struct {
	Proc     ProcID
	Ctrl     ControllerID
	Callback uint64
}

// NewTree returns an empty object registry.
func NewTree() *Tree {
	return &Tree{nodes: make(map[ObjectID]*Node)}
}

// Create registers a new root object and returns its node.
func (t *Tree) Create(payload interface{}) *Node {
	return t.insert(0, payload)
}

// Derive registers a new object as a child of parent. It returns nil
// if the parent does not exist or is revoked.
func (t *Tree) Derive(parent ObjectID, payload interface{}) *Node {
	p, ok := t.nodes[parent]
	if !ok || p.Revoked {
		return nil
	}
	n := t.insert(parent, payload)
	p.Children = append(p.Children, n.ID)
	return n
}

func (t *Tree) insert(parent ObjectID, payload interface{}) *Node {
	t.nextID++
	n := &Node{ID: t.nextID, Parent: parent, Payload: payload}
	t.nodes[n.ID] = n
	return n
}

// Get returns the node for id if it exists and is not revoked.
func (t *Tree) Get(id ObjectID) (*Node, bool) {
	n, ok := t.nodes[id]
	if !ok || n.Revoked {
		return nil, false
	}
	return n, true
}

// GetAny returns the node even if revoked (for cleanup bookkeeping).
func (t *Tree) GetAny(id ObjectID) (*Node, bool) {
	n, ok := t.nodes[id]
	return n, ok
}

// Revoke invalidates the object and, recursively, all its descendant
// objects. It returns the nodes invalidated by this call in
// deterministic (pre-order, creation-order) sequence, so the
// Controller can fire monitor callbacks and schedule the cleanup
// broadcast. Revoking an unknown or already revoked object returns
// nil.
func (t *Tree) Revoke(id ObjectID) []*Node {
	n, ok := t.nodes[id]
	if !ok || n.Revoked {
		return nil
	}
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Revoked {
			return
		}
		n.Revoked = true
		out = append(out, n)
		for _, c := range n.Children {
			if cn, ok := t.nodes[c]; ok {
				walk(cn)
			}
		}
	}
	walk(n)
	return out
}

// Remove erases a revoked node once the cleanup pass has confirmed no
// capabilities reference it. Only revoked leaf bookkeeping is erased;
// children are assumed removed first (Revoke returns pre-order, so
// removing in reverse order is safe).
func (t *Tree) Remove(id ObjectID) {
	n, ok := t.nodes[id]
	if !ok || !n.Revoked {
		return
	}
	if p, ok := t.nodes[n.Parent]; ok {
		for i, c := range p.Children {
			if c == id {
				p.Children = append(p.Children[:i], p.Children[i+1:]...)
				break
			}
		}
	}
	delete(t.nodes, id)
}

// Len reports the number of registered objects (including revoked ones
// awaiting cleanup).
func (t *Tree) Len() int { return len(t.nodes) }

// LiveLen reports the number of non-revoked objects.
func (t *Tree) LiveLen() int {
	n := 0
	for _, nd := range t.nodes {
		if !nd.Revoked {
			n++
		}
	}
	return n
}

// ForEach visits every node (live and revoked) in creation order.
func (t *Tree) ForEach(fn func(*Node)) {
	for id := ObjectID(1); id <= t.nextID; id++ {
		if n, ok := t.nodes[id]; ok {
			fn(n)
		}
	}
}

// Ancestor reports whether anc is id itself or one of its ancestors.
func (t *Tree) Ancestor(anc, id ObjectID) bool {
	for id != 0 {
		if id == anc {
			return true
		}
		n, ok := t.nodes[id]
		if !ok {
			return false
		}
		id = n.Parent
	}
	return false
}

package stacks

import (
	"fractos/internal/app/faceverify"
	"fractos/internal/assert"
	"fractos/internal/cap"
	"fractos/internal/device/gpu"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/wire"
)

// GPU deploys the FractOS GPU compute service of §6.3: a GPU device
// with the face-verification kernel registered, its adaptor Process,
// and a client Process holding one pre-allocated buffer set (image
// batch, probes, output, reply Request) per in-flight slot.
type GPU struct {
	Batch int // images per request; default 1
	Slots int // in-flight slots; default 1

	Node       int // adaptor node; default 1
	ClientNode int // client node; default 0
	MemSize    int // GPU memory; default 96 MiB

	// Filled at deploy.
	Dev *gpu.Device
	App *proc.Process

	invoke proc.Cap
	slots  []gpuSlot
	free   *sim.Semaphore

	lastTransfer sim.Time // upload time of the most recent request
}

type gpuSlot struct {
	imgMem, probeMem            proc.Cap // app-side buffers
	gpuImg, gpuProbe, gpuOut    proc.Cap
	imgAddr, probeAddr, outAddr uint64
	reply                       proc.Cap
	replyTag                    uint64
	imgOff, probeOff            int
}

// Deploy implements testbed.Service: context init, kernel load, and
// per-slot GPU allocations all happen here, inside the main task,
// before the workload starts.
func (g *GPU) Deploy(tk *sim.Task, d *testbed.Deployment) {
	if g.Batch == 0 {
		g.Batch = 1
	}
	if g.Slots == 0 {
		g.Slots = 1
	}
	if g.Node == 0 {
		g.Node = 1
	}
	if g.MemSize == 0 {
		g.MemSize = 96 << 20
	}
	cl := d.Cl
	g.Dev = gpu.NewDevice(cl.K, gpu.Config{MemSize: g.MemSize, LaunchOverhead: gpu.DefaultConfig().LaunchOverhead})
	faceverify.RegisterKernel(g.Dev)
	ad := gpu.NewAdaptor(cl, g.Node, "gpu-adaptor", g.Dev)
	if err := ad.Start(tk); err != nil {
		assert.NoErr(err, "stacks/gpu")
	}
	imgBytes := g.Batch * faceverify.ImgSize
	probeBytes := g.Batch * faceverify.ProbeSize
	slotBytes := imgBytes + probeBytes
	g.free = sim.NewSemaphore(g.Slots)
	g.App = proc.Attach(cl, g.ClientNode, "gpu-client", g.Slots*slotBytes+4096)
	ctxInit, err := proc.GrantCap(ad.P, ad.CtxInit, g.App)
	if err != nil {
		assert.NoErr(err, "stacks/gpu")
	}
	dl, err := g.App.Call(tk, ctxInit, nil, nil, gpu.SlotCont)
	if err != nil {
		assert.NoErr(err, "stacks/gpu")
	}
	allocReq, _ := dl.Cap(gpu.SlotAlloc)
	loadReq, _ := dl.Cap(gpu.SlotLoad)
	name := faceverify.KernelName
	ld, err := g.App.Call(tk, loadReq,
		[]wire.ImmArg{proc.U64Arg(8, uint64(len(name))), proc.BytesArg(16, []byte(name))},
		nil, gpu.SlotCont)
	if err != nil {
		assert.NoErr(err, "stacks/gpu")
	}
	g.invoke, _ = ld.Cap(gpu.SlotKernel)

	alloc := func(size int) (proc.Cap, uint64) {
		dl, err := g.App.Call(tk, allocReq, []wire.ImmArg{proc.U64Arg(8, uint64(size))}, nil, gpu.SlotCont)
		if err != nil {
			assert.NoErr(err, "stacks/gpu")
		}
		if st := dl.U64(0); st != gpu.StatusOK {
			assert.Failf("stacks/gpu: gpu alloc status %d", st)
		}
		c, _ := dl.Cap(gpu.SlotBuf)
		return c, dl.U64(8)
	}
	for i := 0; i < g.Slots; i++ {
		var s gpuSlot
		s.gpuImg, s.imgAddr = alloc(imgBytes)
		s.gpuProbe, s.probeAddr = alloc(probeBytes)
		s.gpuOut, s.outAddr = alloc(g.Batch)
		s.imgOff = i * slotBytes
		s.probeOff = s.imgOff + imgBytes
		if s.imgMem, err = g.App.MemoryCreate(tk, uint64(s.imgOff), uint64(imgBytes), cap.MemRights); err != nil {
			assert.NoErr(err, "stacks/gpu")
		}
		if s.probeMem, err = g.App.MemoryCreate(tk, uint64(s.probeOff), uint64(probeBytes), cap.MemRights); err != nil {
			assert.NoErr(err, "stacks/gpu")
		}
		s.replyTag = g.App.NewTag()
		if s.reply, err = g.App.RequestCreate(tk, s.replyTag, nil, nil); err != nil {
			assert.NoErr(err, "stacks/gpu")
		}
		g.slots = append(g.slots, s)
	}
}

// OneRequestTimed runs one request and returns the latency breakdown:
// data-transfer time, kernel-execution time, and everything else
// (FractOS request handling) — the stacked bars of Figure 9 (left).
func (g *GPU) OneRequestTimed(tk *sim.Task) (total, transfer, kernel sim.Time) {
	start := tk.Now()
	busy0 := g.Dev.BusyTime
	g.OneRequest(tk)
	total = tk.Now() - start
	kernel = g.Dev.BusyTime - busy0
	transfer = g.lastTransfer
	return
}

// OneRequest uploads the image batch + probes, invokes the kernel, and
// waits for its continuation — the single-round-trip invocation that
// makes FractOS beat rCUDA's per-driver-call interposition (§6.3).
func (g *GPU) OneRequest(tk *sim.Task) {
	g.free.Acquire(tk)
	s := g.slots[len(g.slots)-1]
	g.slots = g.slots[:len(g.slots)-1]
	defer func() {
		g.slots = append(g.slots, s)
		g.free.Release()
	}()
	xferStart := tk.Now()
	if err := g.App.MemoryCopy(tk, s.imgMem, s.gpuImg); err != nil {
		assert.NoErr(err, "stacks/gpu")
	}
	if err := g.App.MemoryCopy(tk, s.probeMem, s.gpuProbe); err != nil {
		assert.NoErr(err, "stacks/gpu")
	}
	g.lastTransfer = tk.Now() - xferStart
	ao := gpu.ArgOffset(len(faceverify.KernelName), 0)
	f := g.App.WaitTag(s.replyTag)
	if err := g.App.Invoke(tk, g.invoke,
		[]wire.ImmArg{
			proc.U64Arg(ao, s.imgAddr), proc.U64Arg(ao+8, s.probeAddr),
			proc.U64Arg(ao+16, s.outAddr), proc.U64Arg(ao+24, uint64(g.Batch)),
		},
		[]proc.Arg{{Slot: gpu.SlotSuccess, Cap: s.reply}, {Slot: gpu.SlotError, Cap: s.reply}}); err != nil {
		assert.NoErr(err, "stacks/gpu")
	}
	dl, err := f.Wait(tk)
	if err != nil {
		assert.NoErr(err, "stacks/gpu")
	}
	dl.Done()
	if st := dl.U64(0); st != gpu.StatusOK {
		assert.Failf("stacks/gpu: gpu pipeline status %d", st)
	}
}

var _ testbed.Service = (*GPU)(nil)

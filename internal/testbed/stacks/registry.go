package stacks

import (
	"fractos/internal/assert"
	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

// Registry deploys the capability name-registry service (the trusted
// bootstrap path) on a node.
type Registry struct {
	Node int

	// Filled at deploy.
	R *services.Registry
}

// Deploy implements testbed.Service.
func (r *Registry) Deploy(tk *sim.Task, d *testbed.Deployment) {
	r.R = services.NewRegistry(d.Cl, r.Node)
	if err := r.R.Start(tk); err != nil {
		assert.NoErr(err, "stacks/registry")
	}
}

var _ testbed.Service = (*Registry)(nil)

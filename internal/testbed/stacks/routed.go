package stacks

import (
	"fmt"

	"fractos/internal/assert"
	"fractos/internal/proc"
	"fractos/internal/route"
	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/wire"
)

// Routed deploys a replicated synthetic service behind the registry
// and a routing balancer: a registry on RegistryNode, Replicas
// instances of a sleep-for-the-requested-duration worker spread over
// Nodes, and a client-side Balancer with the named Policy. With
// AutoMax > 0 an Autoscaler manages the instance count between
// Replicas and AutoMax, bound to the deployment's NodeWatch when one
// is present (Spec.Watch/Heartbeat).
//
// The work request is the route package's layout: imm[0:8) request id,
// imm[8:16) service duration in virtual ns.
type Routed struct {
	// Name is the registry name; "" means "svc.work".
	Name string
	// Replicas is the initial (and minimum) instance count; 0 means 4.
	Replicas int
	// Policy is "rr", "least", or "affinity"; "" means "rr".
	Policy string
	// MaxQueue and Width parameterize each replica's admission control.
	MaxQueue int
	Width    int
	// RegistryNode and ClientNode place the control plane; replicas go
	// on Nodes (default: every node except ClientNode, round-robin).
	RegistryNode int
	ClientNode   int
	Nodes        []int
	// AutoMax, when > 0, enables the autoscaler with Max = AutoMax.
	AutoMax int
	// AutoEvery, UpDepth, DownDepth tune the autoscaler (see route).
	AutoEvery sim.Time
	UpDepth   float64
	DownDepth float64
	// AttemptTimeout bounds each routed attempt (see
	// route.Balancer.AttemptTimeout); 0 keeps the route default.
	AttemptTimeout sim.Time

	// Filled at deploy.
	Reg     *services.Registry
	ClientP *proc.Process
	Client  *services.Client
	B       *route.Balancer
	Scaler  *route.Autoscaler
	// Instances are the initial replicas (the autoscaler's view
	// supersedes this when scaling is on).
	Instances []*route.Instance
	// AllInstances is every instance ever spawned, including retired and
	// fenced ones — the soak tests' double-delivery oracle (each request
	// id must appear in at most one instance's Served log).
	AllInstances []*route.Instance
}

// Deploy implements testbed.Service.
func (s *Routed) Deploy(tk *sim.Task, d *testbed.Deployment) {
	if s.Name == "" {
		s.Name = "svc.work"
	}
	if s.Replicas <= 0 {
		s.Replicas = 4
	}
	if len(s.Nodes) == 0 {
		for n := 0; n < d.Cl.Nodes(); n++ {
			if n != s.ClientNode {
				s.Nodes = append(s.Nodes, n)
			}
		}
		if len(s.Nodes) == 0 {
			s.Nodes = []int{s.ClientNode}
		}
	}

	s.Reg = services.NewRegistry(d.Cl, s.RegistryNode)
	assert.NoErr(s.Reg.Start(tk), "stacks/routed: registry")
	if d.Watch != nil {
		s.Reg.BindWatch(d.Watch)
	}

	spawn := func(t *sim.Task, node, seq int) (*route.Instance, error) {
		p := d.Attach(node, fmt.Sprintf("%s-r%d", s.Name, seq), 0)
		rep := &route.Replica{P: p, MaxQueue: s.MaxQueue, Width: s.Width, Handler: workHandler}
		if err := rep.Start(t); err != nil {
			return nil, err
		}
		rc, err := s.Reg.Connect(p)
		if err != nil {
			return nil, err
		}
		id, err := rc.Register(t, s.Name, rep.Root, node)
		if err != nil {
			return nil, err
		}
		in := &route.Instance{Node: node, Seq: seq, MemberID: id, R: rep, Client: rc}
		s.AllInstances = append(s.AllInstances, in)
		return in, nil
	}
	retire := func(t *sim.Task, in *route.Instance) {
		// A fence may have pruned this membership already
		// (StatusUnknownObj) — a benign race at retire time; anything
		// else is a harness bug.
		if err := in.Client.Deregister(t, s.Name, in.MemberID); err != nil &&
			!wire.IsStatus(err, wire.StatusUnknownObj) {
			assert.NoErr(err, "stacks/routed: deregister")
		}
		in.R.Drain(t)
		in.R.P.Bye()
	}

	cp := d.Attach(s.ClientNode, s.Name+"-client", 0)
	s.ClientP = cp
	cl, err := s.Reg.Connect(cp)
	assert.NoErr(err, "stacks/routed: client connect")
	s.Client = cl
	s.B = &route.Balancer{
		Client:         cl,
		Name:           s.Name,
		Policy:         route.ParsePolicy(s.Policy, s.ClientNode),
		Retry:          proc.Retry{Max: 6, Jitter: 0.2, Seed: 17},
		AttemptTimeout: s.AttemptTimeout,
	}

	if s.AutoMax > 0 {
		s.Scaler = &route.Autoscaler{
			Min: s.Replicas, Max: s.AutoMax,
			Every: s.AutoEvery, UpDepth: s.UpDepth, DownDepth: s.DownDepth,
			Nodes: s.Nodes, Spawn: spawn, Retire: retire, Balancer: s.B,
		}
		if d.Watch != nil {
			s.Scaler.BindWatch(d.Watch, d.K())
		}
		assert.NoErr(s.Scaler.Start(tk, d.K()), "stacks/routed: autoscaler")
		s.Instances = s.Scaler.Instances()
		return
	}
	for i := 0; i < s.Replicas; i++ {
		in, err := spawn(tk, s.Nodes[i%len(s.Nodes)], i+1)
		assert.NoErr(err, "stacks/routed: spawn")
		s.Instances = append(s.Instances, in)
	}
}

// workHandler is the synthetic routed service: it models a request
// whose service time rides in imm[8:16).
func workHandler(t *sim.Task, d *proc.Delivery) (wire.Status, []wire.ImmArg, []proc.Arg) {
	if ns := d.U64(8); ns > 0 {
		t.Sleep(sim.Time(ns))
	}
	return wire.StatusOK, nil, nil
}

// Do routes one request with the given id and service duration through
// the balancer.
func (s *Routed) Do(t *sim.Task, id uint64, service sim.Time) error {
	_, err := s.B.Call(t, []wire.ImmArg{
		proc.U64Arg(0, id),
		proc.U64Arg(8, uint64(service)),
	}, nil)
	return err
}

var _ testbed.Service = (*Routed)(nil)

// Package stacks provides the declarative service specs deployed by a
// testbed.Spec: the NVMe adaptor, the extent FS (with its three
// backend modes), the GPU compute service, the capability registry,
// and the face-verification application. Each spec is a
// testbed.Service whose Deploy fills the spec's exported handle fields
// in place; workloads keep the spec pointer and use the handles after
// testbed.Run enters the main task.
//
// The package lives below internal/testbed so packages with internal
// tests (fs, baseline, faceverify) can import the testbed core without
// an import cycle; stacks imports them, not vice versa.
package stacks

import (
	"fractos/internal/assert"
	"fractos/internal/baseline"
	"fractos/internal/cap"
	"fractos/internal/device/nvme"
	"fractos/internal/fs"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

// NVMe deploys an NVMe device plus its adaptor Process on a node.
type NVMe struct {
	Node int
	Name string             // adaptor Process name; default "nvme-adaptor"
	Cfg  nvme.AdaptorConfig // zero value = defaults
	Dev  *nvme.Device       // pre-set to share a device; created if nil
	Ad   *nvme.Adaptor      // filled at deploy
}

// Deploy implements testbed.Service.
func (s *NVMe) Deploy(tk *sim.Task, d *testbed.Deployment) {
	if s.Name == "" {
		s.Name = "nvme-adaptor"
	}
	if s.Dev == nil {
		s.Dev = nvme.NewDevice(d.Cl.K, nvme.DefaultConfig())
	}
	s.Ad = nvme.NewAdaptor(d.Cl, s.Node, s.Name, s.Dev, s.Cfg)
	if err := s.Ad.Start(tk); err != nil {
		assert.NoErr(err, "stacks/nvme")
	}
}

// FS deploys the extent FS service on a node, wired to an NVMe adaptor
// deployed earlier in the Services list.
type FS struct {
	Node    int
	Name    string // FS Process name; default "fs-service"
	Cfg     fs.Config
	Backend *NVMe       // must appear before this spec in Spec.Services
	Svc     *fs.Service // filled at deploy
}

// Deploy implements testbed.Service.
func (s *FS) Deploy(tk *sim.Task, d *testbed.Deployment) {
	if s.Name == "" {
		s.Name = "fs-service"
	}
	if s.Backend == nil || s.Backend.Ad == nil {
		assert.Failf("stacks/fs: Backend NVMe spec missing or not yet deployed")
	}
	s.Svc = fs.NewService(d.Cl, s.Node, s.Name, s.Cfg)
	if err := s.Svc.Wire(s.Backend.Ad); err != nil {
		assert.NoErr(err, "stacks/fs")
	}
	if err := s.Svc.Start(tk); err != nil {
		assert.NoErr(err, "stacks/fs")
	}
}

// StorageKind selects the storage system under test (Figure 10's
// lines).
type StorageKind int

const (
	// StorFS stages every byte through the FS Process.
	StorFS StorageKind = iota
	// StorDAX leases extents to the client for direct device access.
	StorDAX
	// StorDisagg is the NVMe-oF disaggregated baseline backend.
	StorDisagg
)

// Storage deploys the full storage benchmark stack of §6.4: an NVMe
// device, the FS service (or the disaggregated baseline backend), and
// a client Process holding an open benchmark file. The zero value
// places the client on node 0, the FS on node 1, and the device on
// node 2 — the paper's three-node storage topology.
type Storage struct {
	Kind     StorageKind
	ForWrite bool // reopen the benchmark file writable

	ClientNode, FSNode, DevNode int    // all zero = 0/1/2
	FileName                    string // default "bench.bin"
	FileBytes                   uint64 // default fs.MaxExtents * fs.ExtentSize (8 MiB)
	ClientMem                   int    // default 12 MiB

	// Filled at deploy.
	Client *proc.Process
	File   *fs.File
	Svc    *fs.Service
	Open   proc.Cap // client's open-file Request capability
	// DropCaches / SetCacheSize act on the baseline backend's block
	// cache; DropCaches is a no-op for the FractOS kinds (the FractOS
	// FS has no cache) and SetCacheSize is nil for them.
	DropCaches   func()
	SetCacheSize func(int64)

	mem map[uint64]proc.Cap // size → cached client Memory capability
}

// Deploy implements testbed.Service. The construction order is the
// evaluation's reference order (device, FS service, backend wiring,
// service start, client attach, file create + reopen, cache drop);
// changing it would shift virtual timestamps during setup, though not
// the steady-state metrics measured afterwards.
func (s *Storage) Deploy(tk *sim.Task, d *testbed.Deployment) {
	if s.ClientNode == 0 && s.FSNode == 0 && s.DevNode == 0 {
		s.FSNode, s.DevNode = 1, 2
	}
	if s.FileName == "" {
		s.FileName = "bench.bin"
	}
	if s.FileBytes == 0 {
		s.FileBytes = uint64(fs.MaxExtents) * fs.ExtentSize
	}
	if s.ClientMem == 0 {
		s.ClientMem = 12 << 20
	}
	cl := d.Cl
	dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
	s.Svc = fs.NewService(cl, s.FSNode, "fs", fs.Config{})
	switch s.Kind {
	case StorDisagg:
		be := baseline.NewDisaggregatedBackend(cl, s.FSNode, s.DevNode, dev)
		s.Svc.WireBackend(be)
		s.DropCaches = be.Initiator().DropCaches
		s.SetCacheSize = be.Initiator().SetCacheSize
	default:
		ad := nvme.NewAdaptor(cl, s.DevNode, "nvme", dev, nvme.AdaptorConfig{})
		if err := ad.Start(tk); err != nil {
			assert.NoErr(err, "stacks/storage")
		}
		if err := s.Svc.Wire(ad); err != nil {
			assert.NoErr(err, "stacks/storage")
		}
		s.DropCaches = func() {}
	}
	if err := s.Svc.Start(tk); err != nil {
		assert.NoErr(err, "stacks/storage")
	}
	s.Client = proc.Attach(cl, s.ClientNode, "stor-client", s.ClientMem)
	open, err := proc.GrantCap(s.Svc.P, s.Svc.Open, s.Client)
	if err != nil {
		assert.NoErr(err, "stacks/storage")
	}
	s.Open = open
	mode := uint64(fs.OpenRead | fs.OpenWrite | fs.OpenCreate)
	if _, err := fs.OpenFile(tk, s.Client, open, s.FileName, mode, s.FileBytes); err != nil {
		assert.NoErr(err, "stacks/storage")
	}
	reopen := uint64(fs.OpenRead)
	if s.ForWrite {
		reopen |= fs.OpenWrite
	}
	if s.Kind == StorDAX {
		reopen |= fs.OpenDAX
	}
	f, err := fs.OpenFile(tk, s.Client, open, s.FileName, reopen, 0)
	if err != nil {
		assert.NoErr(err, "stacks/storage")
	}
	s.File = f
	s.mem = map[uint64]proc.Cap{}
	s.DropCaches()
}

// Buf returns (caching by size) a client Memory capability of exactly
// n bytes.
func (s *Storage) Buf(tk *sim.Task, n uint64) proc.Cap {
	if c, ok := s.mem[n]; ok {
		return c
	}
	c := s.Alloc(tk, n)
	s.mem[n] = c
	return c
}

// Alloc registers a fresh (uncached) client Memory capability of n
// bytes — one per concurrent worker in throughput runs.
func (s *Storage) Alloc(tk *sim.Task, n uint64) proc.Cap {
	c, _, err := s.Client.AllocMemory(tk, int(n), cap.MemRights)
	if err != nil {
		assert.NoErr(err, "stacks/storage")
	}
	return c
}

var _ testbed.Service = (*NVMe)(nil)
var _ testbed.Service = (*FS)(nil)
var _ testbed.Service = (*Storage)(nil)

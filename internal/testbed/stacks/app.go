package stacks

import (
	"fractos/internal/app/faceverify"
	"fractos/internal/assert"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

// FaceVerify deploys the paper's end-to-end face-verification
// application (§5, §6.5) on a 4-node testbed: frontend on node 0, GPU
// on node 1, storage on node 2, FS on node 3 (node roles are fixed by
// the application package). Baseline selects the NFS + NVMe-oF + rCUDA
// stack instead of FractOS.
type FaceVerify struct {
	Cfg      faceverify.Config
	Baseline bool

	// Filled at deploy. App is set for the FractOS stack, Base for the
	// baseline; DB and Verify work for either.
	App  *faceverify.FractOSApp
	Base *faceverify.BaselineApp
	DB   *faceverify.DB
}

// Deploy implements testbed.Service.
func (v *FaceVerify) Deploy(tk *sim.Task, d *testbed.Deployment) {
	if v.Baseline {
		app, err := faceverify.SetupBaseline(tk, d.Cl, v.Cfg)
		if err != nil {
			assert.NoErr(err, "stacks/faceverify")
		}
		v.Base, v.DB = app, app.DB
		return
	}
	app, err := faceverify.SetupFractOS(tk, d.Cl, v.Cfg)
	if err != nil {
		assert.NoErr(err, "stacks/faceverify")
	}
	v.App, v.DB = app, app.DB
}

// Verify runs one verification request on whichever stack was
// deployed.
func (v *FaceVerify) Verify(tk *sim.Task, r *faceverify.Request) ([]byte, error) {
	if v.Baseline {
		return v.Base.VerifyBatch(tk, r)
	}
	return v.App.VerifyBatch(tk, r)
}

var _ testbed.Service = (*FaceVerify)(nil)

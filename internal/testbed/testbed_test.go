package testbed_test

import (
	"reflect"
	"testing"

	"fractos/internal/core"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

// orderSvc records the order services deploy in.
type orderSvc struct {
	id  int
	log *[]int
}

func (s *orderSvc) Deploy(tk *sim.Task, d *testbed.Deployment) {
	if d.Cl == nil || tk == nil {
		panic("deploy without a running cluster")
	}
	*s.log = append(*s.log, s.id)
}

// TestServicesDeployInOrder: Spec.Services deploy strictly in slice
// order, inside the main task, before the workload runs.
func TestServicesDeployInOrder(t *testing.T) {
	var log []int
	spec := testbed.Spec{Nodes: 2, Services: []testbed.Service{
		&orderSvc{1, &log}, &orderSvc{2, &log}, &orderSvc{3, &log},
	}}
	ran := false
	testbed.RunT(t, spec, func(tk *sim.Task, d *testbed.Deployment) {
		ran = true
		if len(log) != 3 {
			t.Errorf("workload ran before all services deployed: %v", log)
		}
	})
	if !ran {
		t.Fatal("workload did not run")
	}
	if len(log) != 3 || log[0] != 1 || log[1] != 2 || log[2] != 3 {
		t.Errorf("deploy order = %v, want [1 2 3]", log)
	}
}

// TestWatchAndHandles: Watch is wired iff requested; the deployment's
// accessors reflect the built cluster.
func TestWatchAndHandles(t *testing.T) {
	testbed.RunT(t, testbed.Spec{Nodes: 3, Watch: true},
		func(tk *sim.Task, d *testbed.Deployment) {
			if d.Watch == nil {
				t.Error("Spec.Watch did not install a NodeWatch")
			}
			if d.K() != d.Cl.K || d.Net() != d.Cl.Net {
				t.Error("accessors disagree with the cluster")
			}
			p := d.Attach(2, "probe", 64)
			if err := p.Null(tk); err != nil {
				t.Errorf("attached process unusable: %v", err)
			}
		})
	testbed.RunT(t, testbed.Spec{Nodes: 2},
		func(tk *sim.Task, d *testbed.Deployment) {
			if d.Watch != nil {
				t.Error("NodeWatch installed without Spec.Watch")
			}
		})
}

// TestSpecOfRoundTrip: SpecOf preserves every topology field.
func TestSpecOfRoundTrip(t *testing.T) {
	cfg := core.ClusterConfig{Nodes: 5, Placement: core.CtrlShared, Seed: 9}
	cfg.Ctrl.CapQuota = 7
	s := testbed.SpecOf(cfg)
	// ClusterConfig is no longer ==-comparable (Faults holds a Plan
	// slice), so compare structurally.
	if got := s.ClusterConfig(); !reflect.DeepEqual(got, cfg) {
		t.Errorf("round trip changed the config: %+v vs %+v", got, cfg)
	}
}

// fakeTB captures RunT's failure path.
type fakeTB struct{ failed bool }

func (f *fakeTB) Helper()               {}
func (f *fakeTB) Fatalf(string, ...any) { f.failed = true }

// TestRunTReportsDeadlock: a main task that blocks forever fails the
// test instead of hanging or panicking.
func TestRunTReportsDeadlock(t *testing.T) {
	var f fakeTB
	testbed.RunT(&f, testbed.Spec{Nodes: 1}, func(tk *sim.Task, d *testbed.Deployment) {
		ch := sim.NewChan[int](d.K(), "never", 0)
		ch.Recv(tk) // no sender: the kernel runs out of events
	})
	if !f.failed {
		t.Fatal("deadlocked main task did not fail the run")
	}
}

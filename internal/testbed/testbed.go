// Package testbed is the declarative deployment layer shared by the
// evaluation harness (internal/exp), the runnable examples, and the
// integration tests. A Spec describes a cluster — node count,
// Controller placement, fabric profile, seed — plus an ordered list of
// Services to deploy (GPU adaptor, NVMe adaptor, FS, registry,
// face-verification application, ...). Run builds the kernel, fabric,
// Controllers, and capability bootstrap in one call, deploys the
// services inside the simulation's main task, and hands control to the
// workload.
//
// The layer exists so experiments describe *what* runs where and
// workloads describe *load*, instead of every file hand-assembling
// core.NewCluster plus bespoke service wiring. Determinism contract:
// Run is a pure function of the Spec and the workload — services are
// deployed strictly in slice order inside the main task, the only
// randomness is the kernel's seeded source, and two Runs of the same
// Spec produce byte-identical fabric traces.
package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"fractos/internal/assert"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/proc"
	"fractos/internal/services"
	"fractos/internal/sim"
)

// TB is the subset of *testing.T the testbed needs. It is duck-typed
// so the package never links "testing" into non-test binaries (the
// examples use Run; tests use RunT).
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Service is one deployable component of a testbed. Deploy runs inside
// the simulation's main task, before the workload, in Spec.Services
// order; it should fill the spec's exported handle fields so the
// workload can use the service. Deployment failures are harness bugs
// and are reported through internal/assert.
type Service interface {
	Deploy(tk *sim.Task, d *Deployment)
}

// Spec declares a cluster deployment. The zero value is a 3-node
// cluster with per-node host-CPU Controllers, the default fabric
// profile, seed 0, and no services — exactly core.NewCluster's
// defaults.
type Spec struct {
	Nodes     int
	Placement core.Placement
	Ctrl      core.Config    // Controller template; Loc is set per controller
	Profile   fabric.Profile // zero value = fabric.DefaultProfile()
	Seed      int64
	// Shards selects the simulation engine width: 0 means "use the
	// package default" (SetDefaultShards, normally 1), 1 runs the
	// classic single-kernel path, and N>1 drives the deployment under a
	// partition-parallel sim.Engine with the cluster on shard 0. The
	// cluster workload itself stays shard-0-resident either way, so the
	// observable trace is byte-identical across shard counts — the
	// knob exists to run the full evaluation through the conservative
	// windowing machinery (the determinism matrix) and to give
	// workloads access to the remaining shards via Deployment.Eng.
	Shards int
	// Watch adds a failure-injection NodeWatch to the deployment
	// (examples/failover, recovery tests).
	Watch bool
	// Chaos, when Enabled, installs the fault-injection layer on the
	// fabric and arms the Controllers' retransmission protocol
	// (docs/FAULTS.md). The zero value changes nothing: traces stay
	// byte-identical to a fault-free deployment.
	Chaos fabric.Faults
	// Heartbeat, when non-nil, starts Watch's heartbeat failure
	// detector before the services deploy and stops it after the
	// workload returns (so the kernel's event loop drains). Implies
	// Watch.
	Heartbeat *services.WatchConfig
	// Services are deployed in order inside the main task before the
	// workload runs.
	Services []Service
}

// ClusterConfig converts the Spec's topology fields for core.NewCluster.
func (s Spec) ClusterConfig() core.ClusterConfig {
	return core.ClusterConfig{
		Nodes:     s.Nodes,
		Placement: s.Placement,
		Ctrl:      s.Ctrl,
		Profile:   s.Profile,
		Seed:      s.Seed,
		Faults:    s.Chaos,
	}
}

// SpecOf converts a core.ClusterConfig (the pre-testbed configuration
// type still used by call sites that sweep topology parameters) into
// the equivalent Spec.
func SpecOf(cfg core.ClusterConfig, svcs ...Service) Spec {
	return Spec{
		Nodes:     cfg.Nodes,
		Placement: cfg.Placement,
		Ctrl:      cfg.Ctrl,
		Profile:   cfg.Profile,
		Seed:      cfg.Seed,
		Chaos:     cfg.Faults,
		Services:  svcs,
	}
}

// Deployment is a running testbed: the cluster plus whatever the
// Spec's services exposed at deploy time.
type Deployment struct {
	Cl *core.Cluster
	// Eng is the simulation engine driving the deployment. Its shard 0
	// carries the cluster; with Spec.Shards > 1 the remaining shards
	// are available for partitioned auxiliary load.
	Eng *sim.Engine
	// Watch is non-nil iff Spec.Watch was set.
	Watch *services.NodeWatch
}

// K returns the simulation kernel.
func (d *Deployment) K() *sim.Kernel { return d.Cl.K }

// Net returns the fabric.
func (d *Deployment) Net() *fabric.Net { return d.Cl.Net }

// Attach creates a Process on a node with memBytes of registered
// memory, attached to the node's Controller.
func (d *Deployment) Attach(node int, name string, memBytes int) *proc.Process {
	return proc.Attach(d.Cl, node, name, memBytes)
}

// Spawn starts an auxiliary task (load-driver workers, background
// services).
func (d *Deployment) Spawn(name string, fn func(tk *sim.Task)) { d.Cl.K.Spawn(name, fn) }

// Run builds the cluster described by s, deploys its services in order
// inside the main task, invokes fn as the workload, and runs the
// simulation to completion; it panics (via internal/assert) if the
// main task deadlocks. This is the single entry point every
// experiment, example, and heavy integration test goes through.
func Run(s Spec, fn func(tk *sim.Task, d *Deployment)) {
	if !run(s, fn) {
		assert.Failf("testbed: main task did not complete (deadlock)")
	}
}

// RunT is Run for tests: an incomplete main task fails the test
// instead of panicking the process.
func RunT(tb TB, s Spec, fn func(tk *sim.Task, d *Deployment)) {
	tb.Helper()
	if !run(s, fn) {
		tb.Fatalf("testbed: main task did not complete (deadlock)")
	}
}

// defaultShards is the engine width used when Spec.Shards is zero.
var defaultShards = 1

// SetDefaultShards overrides the engine width for Specs that leave
// Shards at zero, returning the previous default. The determinism
// matrix uses this to sweep every experiment through multi-shard
// engines without threading a parameter into each Spec.
func SetDefaultShards(n int) int {
	old := defaultShards
	if n < 1 {
		n = 1
	}
	defaultShards = n
	return old
}

func run(s Spec, fn func(tk *sim.Task, d *Deployment)) bool {
	shards := s.Shards
	if shards == 0 {
		shards = defaultShards
	}
	eng := sim.NewEngine(s.Seed, shards)
	cfg := s.ClusterConfig()
	cfg.K = eng.Shard(0)
	cl := core.NewCluster(cfg)
	d := &Deployment{Cl: cl, Eng: eng}
	if s.Watch || s.Heartbeat != nil {
		d.Watch = services.NewNodeWatch(cl)
	}
	if s.Heartbeat != nil {
		d.Watch.StartHeartbeat(*s.Heartbeat)
	}
	done := false
	cl.K.Spawn("tb-main", func(tk *sim.Task) {
		for _, svc := range s.Services {
			svc.Deploy(tk, d)
		}
		fn(tk, d)
		done = true
		if s.Heartbeat != nil {
			d.Watch.Stop()
		}
	})
	eng.Run()
	eng.Shutdown()
	return done
}

// --- shared formatting / unit helpers -------------------------------
//
// Folded here from the per-package copies that used to live in
// internal/exp, the examples, and the integration tests.

// Rand returns a deterministic random source for workload generation.
// (The simdet analyzer forbids the global math/rand functions.)
func Rand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// USec converts microseconds to virtual time.
func USec(f float64) sim.Time { return sim.Time(f * float64(time.Microsecond)) }

// Us formats a virtual duration in microseconds with two decimals.
func Us(d sim.Time) string { return fmt.Sprintf("%.2f", float64(d)/1e3) }

// Ms formats a virtual duration in milliseconds with three decimals.
func Ms(d sim.Time) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }

// Mbps formats bytes moved over a duration as whole MB/s.
func Mbps(bytes int, d sim.Time) string { return fmt.Sprintf("%.0f", MbpsVal(bytes, d)) }

// MbpsVal computes bytes moved over a duration in MB/s.
func MbpsVal(bytes int, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (float64(d) / 1e9) / 1e6
}

// SizeLabel formats a byte count compactly (4K, 1M, 17B).
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

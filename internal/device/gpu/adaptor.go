package gpu

import (
	"encoding/binary"
	"fmt"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// The GPU adaptor's RPC interface (§5). An application obtains the
// context-init Request, whose reply hands it per-context alloc/load
// Requests; loading a kernel hands it that kernel's invocation
// Request. All of these can be delegated and refined like any Request.
const (
	// TagCtxInit creates a GPU context.
	// caps: SlotCont = reply. Reply caps: SlotAlloc, SlotLoad,
	// SlotFree, SlotCleanup.
	TagCtxInit uint64 = 0x20
	// TagAlloc allocates GPU memory.
	// imm[8:16) = size; caps: SlotCont. Reply: imm[0:8) = status,
	// imm[8:16) = device address; caps: SlotBuf = Memory capability.
	TagAlloc uint64 = 0x21
	// TagLoad loads a kernel.
	// imm[8:16) = name length, [16:...) = name bytes; caps: SlotCont.
	// Reply: imm[0:8) = status; caps: SlotKernel = invocation Request.
	TagLoad uint64 = 0x22
	// TagInvoke invokes a loaded kernel.
	// imm[8:16) = kernel-name length and [16:16+len) = name, preset at
	// load time and immutable; uint64 kernel arguments follow at the
	// next 8-byte boundary (ArgOffset) and are forwarded verbatim;
	// caps: SlotSuccess and SlotError continuations (§5: "two Request
	// arguments used to signal success/error"). The chosen
	// continuation receives imm[0:8) = kernel status.
	TagInvoke uint64 = 0x23
	// TagFree releases GPU memory. imm[8:16) = device address.
	TagFree uint64 = 0x24
	// TagCleanup destroys the context and frees its resources.
	TagCleanup uint64 = 0x25
)

// Argument slots of the GPU interface.
const (
	SlotCont    uint16 = 0 // reply continuation of management RPCs
	SlotSuccess uint16 = 0 // success continuation of TagInvoke
	SlotError   uint16 = 1 // error continuation of TagInvoke

	// Reply slots.
	SlotAlloc   uint16 = 0
	SlotLoad    uint16 = 1
	SlotFree    uint16 = 2
	SlotCleanup uint16 = 3
	SlotBuf     uint16 = 0
	SlotKernel  uint16 = 0
)

// GPU adaptor status codes.
const (
	StatusOK       uint64 = 0
	StatusNoMem    uint64 = 1
	StatusNoKernel uint64 = 2
	StatusBadArg   uint64 = 3
	StatusAdaptErr uint64 = 4
)

// Adaptor exposes one GPU as FractOS Requests. Its arena is the GPU's
// memory: Memory capabilities handed to clients point straight into
// it, so remote reads/writes model GPUDirect RDMA.
type Adaptor struct {
	P   *proc.Process
	dev *Device

	ctxBufs map[uint64][]uint64 // context → device addresses
	nextCtx uint64

	// CtxInit is the adaptor's root Request; grant it to applications.
	CtxInit proc.Cap
}

// NewAdaptor attaches a GPU adaptor Process on the given node.
func NewAdaptor(cl *core.Cluster, node int, name string, dev *Device) *Adaptor {
	return &Adaptor{
		P:       proc.Attach(cl, node, name, dev.MemSize()),
		dev:     dev,
		ctxBufs: make(map[uint64][]uint64),
	}
}

// Start registers the context-init Request and spawns the serve loop.
func (a *Adaptor) Start(t *sim.Task) error {
	ci, err := a.P.RequestCreate(t, TagCtxInit, nil, nil)
	if err != nil {
		return fmt.Errorf("gpu adaptor: ctx-init request: %w", err)
	}
	a.CtxInit = ci
	a.P.Kernel().Spawn("gpu-adaptor", a.serve)
	return nil
}

func (a *Adaptor) serve(t *sim.Task) {
	for {
		d, ok := a.P.Receive(t)
		if !ok {
			return
		}
		// Management RPCs are quick and handled inline; kernel
		// invocations run as sub-tasks so a long kernel doesn't stall
		// the adaptor (multiple clients, Figure 9 right).
		if d.Tag == TagInvoke {
			a.P.Kernel().Spawn("gpu-invoke", func(ht *sim.Task) { a.handleInvoke(ht, d) })
			continue
		}
		a.handleMgmt(t, d)
	}
}

func (a *Adaptor) handleMgmt(t *sim.Task, d *proc.Delivery) {
	defer d.Done()
	cont, haveCont := d.Cap(SlotCont)
	reply := func(imms []wire.ImmArg, args []proc.Arg) {
		if haveCont {
			a.P.Invoke(t, cont, imms, args)
		}
	}
	switch d.Tag {
	case TagCtxInit:
		a.nextCtx++
		ctx := a.nextCtx
		alloc, e1 := a.P.RequestCreate(t, TagAlloc, []wire.ImmArg{proc.U64Arg(0, ctx)}, nil)
		load, e2 := a.P.RequestCreate(t, TagLoad, []wire.ImmArg{proc.U64Arg(0, ctx)}, nil)
		free, e3 := a.P.RequestCreate(t, TagFree, []wire.ImmArg{proc.U64Arg(0, ctx)}, nil)
		clean, e4 := a.P.RequestCreate(t, TagCleanup, []wire.ImmArg{proc.U64Arg(0, ctx)}, nil)
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			reply([]wire.ImmArg{proc.U64Arg(0, StatusAdaptErr)}, nil)
			return
		}
		a.ctxBufs[ctx] = nil
		reply(nil, []proc.Arg{
			{Slot: SlotAlloc, Cap: alloc}, {Slot: SlotLoad, Cap: load},
			{Slot: SlotFree, Cap: free}, {Slot: SlotCleanup, Cap: clean},
		})

	case TagAlloc:
		ctx := d.U64(0)
		size := d.U64(8)
		if _, ok := a.ctxBufs[ctx]; !ok || size == 0 {
			reply([]wire.ImmArg{proc.U64Arg(0, StatusBadArg)}, nil)
			return
		}
		off, err := a.P.Alloc(int(size))
		if err != nil {
			reply([]wire.ImmArg{proc.U64Arg(0, StatusNoMem)}, nil)
			return
		}
		buf, err := a.P.MemoryCreate(t, uint64(off), size, cap.MemRights)
		if err != nil {
			a.P.Free(off)
			reply([]wire.ImmArg{proc.U64Arg(0, StatusAdaptErr)}, nil)
			return
		}
		a.ctxBufs[ctx] = append(a.ctxBufs[ctx], uint64(off))
		reply([]wire.ImmArg{proc.U64Arg(8, uint64(off))}, []proc.Arg{{Slot: SlotBuf, Cap: buf}})

	case TagLoad:
		nameLen := int(d.U64(8))
		if 16+nameLen > len(d.Imms) {
			reply([]wire.ImmArg{proc.U64Arg(0, StatusBadArg)}, nil)
			return
		}
		name := string(d.Imms[16 : 16+nameLen])
		if !a.dev.Has(name) {
			reply([]wire.ImmArg{proc.U64Arg(0, StatusNoKernel)}, nil)
			return
		}
		// The invocation Request presets the kernel name; clients can
		// only add arguments and continuations — the kernel itself
		// stays fixed (§5).
		inv, err := a.P.RequestCreate(t, TagInvoke,
			[]wire.ImmArg{proc.U64Arg(8, uint64(nameLen)), proc.BytesArg(16, []byte(name))}, nil)
		if err != nil {
			reply([]wire.ImmArg{proc.U64Arg(0, StatusAdaptErr)}, nil)
			return
		}
		reply(nil, []proc.Arg{{Slot: SlotKernel, Cap: inv}})

	case TagFree:
		ctx := d.U64(0)
		addr := d.U64(8)
		bufs := a.ctxBufs[ctx]
		for i, b := range bufs {
			if b == addr {
				a.ctxBufs[ctx] = append(bufs[:i], bufs[i+1:]...)
				a.P.Free(int(addr))
				break
			}
		}
		reply(nil, nil)

	case TagCleanup:
		ctx := d.U64(0)
		for _, b := range a.ctxBufs[ctx] {
			a.P.Free(int(b))
		}
		delete(a.ctxBufs, ctx)
		reply(nil, nil)
	}
}

// handleInvoke runs a kernel and invokes the success or error
// continuation, giving the application-agnostic decentralized control
// flow of §2.2: the adaptor invokes whatever continuation it was
// handed, verbatim.
func (a *Adaptor) handleInvoke(t *sim.Task, d *proc.Delivery) {
	defer d.Done()
	succ, _ := d.Cap(SlotSuccess)
	errc, haveErr := d.Cap(SlotError)
	fail := func(code uint64) {
		if haveErr {
			a.P.Invoke(t, errc, []wire.ImmArg{proc.U64Arg(0, code)}, nil)
		}
	}
	// Upstream-status convention: when the kernel Request is chained
	// as another service's continuation (e.g. a storage read writing
	// into GPU memory, Figure 2's b→c edge), that service reports its
	// outcome in imm[0:8). A non-zero status means the kernel's inputs
	// never arrived — propagate the failure instead of computing on
	// garbage.
	if st := d.U64(0); st != 0 {
		fail(st)
		return
	}
	nameLen := int(d.U64(8))
	if 16+nameLen > len(d.Imms) {
		fail(StatusBadArg)
		return
	}
	name := string(d.Imms[16 : 16+nameLen])
	args := kernelArgs(d.Imms, 16+nameLen)
	st, err := a.dev.Exec(t, name, a.P.Arena(), args)
	if err != nil {
		fail(StatusNoKernel)
		return
	}
	if st != 0 {
		fail(st)
		return
	}
	if succ.Valid() {
		a.P.Invoke(t, succ, []wire.ImmArg{proc.U64Arg(0, StatusOK)}, nil)
	}
}

// kernelArgs decodes the uint64 arguments following the kernel-name
// header, rounding the start up to an 8-byte boundary.
func kernelArgs(imms []byte, from int) []uint64 {
	from = (from + 7) &^ 7
	var args []uint64
	for off := from; off+8 <= len(imms); off += 8 {
		args = append(args, binary.LittleEndian.Uint64(imms[off:]))
	}
	return args
}

// ArgOffset returns the immediate offset where invocation argument i
// must be written (after the preset kernel-name header).
func ArgOffset(nameLen, i int) int {
	return ((16 + nameLen + 7) &^ 7) + 8*i
}

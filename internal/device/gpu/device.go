// Package gpu models a disaggregated GPU (the NVIDIA Tesla K80 of
// Table 2) and implements the FractOS GPU adaptor service of §5: a
// host-CPU Process that exposes context initialization, memory
// de/allocation, kernel loading, and kernel invocation as Requests.
//
// The device executes real compute: kernels are Go functions operating
// on the bytes of the adaptor's arena (which models GPU memory that is
// RDMA-accessible via GPUDirect), under a timing model of launch
// overhead plus a per-kernel cost function.
package gpu

import (
	"fmt"
	"time"

	"fractos/internal/sim"
)

// KernelFunc is a loaded GPU kernel: it computes over GPU memory with
// the forwarded immediate arguments, returning a status (0 = success).
type KernelFunc func(mem []byte, args []uint64) uint64

// CostFunc models a kernel's execution time for given arguments.
type CostFunc func(args []uint64) sim.Time

// Config is the device model.
type Config struct {
	// MemSize is the GPU memory size in bytes.
	MemSize int
	// LaunchOverhead is the fixed cost of a kernel launch.
	LaunchOverhead sim.Time
}

// DefaultConfig models the paper's K80 for the face-verification
// workload.
func DefaultConfig() Config {
	return Config{
		MemSize:        64 << 20,
		LaunchOverhead: 10 * sim.Time(time.Microsecond),
	}
}

type kernel struct {
	name string
	fn   KernelFunc
	cost CostFunc
}

// Device is one simulated GPU.
type Device struct {
	k       *sim.Kernel
	cfg     Config
	kernels map[string]*kernel
	exec    *sim.Semaphore // one kernel executes at a time

	// Counters for the evaluation harness.
	Launches int64
	BusyTime sim.Time
}

// NewDevice creates a GPU.
func NewDevice(k *sim.Kernel, cfg Config) *Device {
	if cfg.MemSize == 0 {
		cfg = DefaultConfig()
	}
	return &Device{k: k, cfg: cfg, kernels: make(map[string]*kernel), exec: sim.NewSemaphore(1)}
}

// MemSize returns the GPU memory size.
func (d *Device) MemSize() int { return d.cfg.MemSize }

// Register installs a kernel binary on the device (the pool of kernels
// an adaptor can load).
func (d *Device) Register(name string, fn KernelFunc, cost CostFunc) {
	d.kernels[name] = &kernel{name: name, fn: fn, cost: cost}
}

// Has reports whether a kernel is registered.
func (d *Device) Has(name string) bool {
	_, ok := d.kernels[name]
	return ok
}

// Exec runs a kernel over mem (GPU memory), blocking the caller for
// the modeled execution time. Kernels serialize on the device.
func (d *Device) Exec(t *sim.Task, name string, mem []byte, args []uint64) (uint64, error) {
	kn, ok := d.kernels[name]
	if !ok {
		return 0, fmt.Errorf("gpu: unknown kernel %q", name)
	}
	d.exec.Acquire(t)
	defer d.exec.Release()
	dur := d.cfg.LaunchOverhead + kn.cost(args)
	t.Sleep(dur)
	d.Launches++
	d.BusyTime += dur
	return kn.fn(mem, args), nil
}

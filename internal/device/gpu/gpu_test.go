package gpu

import (
	"encoding/binary"
	"testing"
	"time"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/device/nvme"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

func us(f float64) sim.Time { return sim.Time(f * float64(time.Microsecond)) }

// addKernel is a toy kernel: out[i] = a[i] + b[i] over n bytes.
// args: [0]=aAddr [1]=bAddr [2]=outAddr [3]=n
func addKernel(mem []byte, args []uint64) uint64 {
	if len(args) < 4 {
		return StatusBadArg
	}
	a, b, out, n := args[0], args[1], args[2], args[3]
	for i := uint64(0); i < n; i++ {
		mem[out+i] = mem[a+i] + mem[b+i]
	}
	return 0
}

func runCluster(t *testing.T, fn func(tk *sim.Task, cl *core.Cluster)) {
	t.Helper()
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) { fn(tk, cl); done = true })
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("test did not complete (deadlock?)")
	}
}

// setup builds a GPU with the add kernel, its adaptor on node 1, and a
// client on node 0 holding the ctx-init Request.
func setup(tk *sim.Task, t *testing.T, cl *core.Cluster) (*Adaptor, *proc.Process, proc.Cap) {
	t.Helper()
	dev := NewDevice(cl.K, DefaultConfig())
	dev.Register("add", addKernel, func(args []uint64) sim.Time {
		if len(args) < 4 {
			return 0
		}
		return sim.Time(args[3]) * 2 // 2ns per byte
	})
	ad := NewAdaptor(cl, 1, "gpu0", dev)
	if err := ad.Start(tk); err != nil {
		t.Fatal(err)
	}
	client := proc.Attach(cl, 0, "client", 1<<20)
	ci, err := proc.GrantCap(ad.P, ad.CtxInit, client)
	if err != nil {
		t.Fatal(err)
	}
	return ad, client, ci
}

// initCtx performs the context handshake, returning alloc and load
// Requests.
func initCtx(tk *sim.Task, t *testing.T, client *proc.Process, ci proc.Cap) (alloc, load, free, cleanup proc.Cap) {
	t.Helper()
	d, err := client.Call(tk, ci, nil, nil, SlotCont)
	if err != nil {
		t.Fatalf("ctx init: %v", err)
	}
	var ok [4]bool
	alloc, ok[0] = d.Cap(SlotAlloc)
	load, ok[1] = d.Cap(SlotLoad)
	free, ok[2] = d.Cap(SlotFree)
	cleanup, ok[3] = d.Cap(SlotCleanup)
	for i, o := range ok {
		if !o {
			t.Fatalf("ctx reply missing cap %d", i)
		}
	}
	return
}

// gpuAlloc allocates GPU memory, returning the Memory cap and device
// address.
func gpuAlloc(tk *sim.Task, t *testing.T, client *proc.Process, alloc proc.Cap, size uint64) (proc.Cap, uint64) {
	t.Helper()
	d, err := client.Call(tk, alloc, []wire.ImmArg{proc.U64Arg(8, size)}, nil, SlotCont)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if st := d.U64(0); st != StatusOK {
		t.Fatalf("alloc status %d", st)
	}
	buf, ok := d.Cap(SlotBuf)
	if !ok {
		t.Fatal("alloc reply missing buffer cap")
	}
	return buf, d.U64(8)
}

// loadKernel loads a kernel by name, returning its invocation Request.
func loadKernel(tk *sim.Task, t *testing.T, client *proc.Process, load proc.Cap, name string) proc.Cap {
	t.Helper()
	d, err := client.Call(tk, load,
		[]wire.ImmArg{proc.U64Arg(8, uint64(len(name))), proc.BytesArg(16, []byte(name))},
		nil, SlotCont)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if st := d.U64(0); st != StatusOK {
		t.Fatalf("load status %d", st)
	}
	inv, ok := d.Cap(SlotKernel)
	if !ok {
		t.Fatal("load reply missing kernel request")
	}
	return inv
}

func TestEndToEndKernelExecution(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		ad, client, ci := setup(tk, t, cl)
		alloc, load, _, _ := initCtx(tk, t, client, ci)

		const n = 256
		bufA, addrA := gpuAlloc(tk, t, client, alloc, n)
		bufB, addrB := gpuAlloc(tk, t, client, alloc, n)
		bufOut, addrOut := gpuAlloc(tk, t, client, alloc, n)

		// Upload inputs from the client with memory_copy.
		for i := 0; i < n; i++ {
			client.Arena()[i] = byte(i)
			client.Arena()[n+i] = byte(2 * i)
		}
		inA, _ := client.MemoryCreate(tk, 0, n, cap.MemRights)
		inB, _ := client.MemoryCreate(tk, n, n, cap.MemRights)
		if err := client.MemoryCopy(tk, inA, bufA); err != nil {
			t.Fatalf("upload A: %v", err)
		}
		if err := client.MemoryCopy(tk, inB, bufB); err != nil {
			t.Fatalf("upload B: %v", err)
		}

		// Invoke: kernel args a, b, out, n; success continuation.
		inv := loadKernel(tk, t, client, load, "add")
		ao := ArgOffset(len("add"), 0)
		d, err := client.Call(tk, inv, []wire.ImmArg{
			proc.U64Arg(ao, addrA), proc.U64Arg(ao+8, addrB),
			proc.U64Arg(ao+16, addrOut), proc.U64Arg(ao+24, n),
		}, nil, SlotSuccess)
		if err != nil {
			t.Fatalf("invoke: %v", err)
		}
		if st := d.U64(0); st != StatusOK {
			t.Fatalf("kernel status %d", st)
		}

		// Download the result and verify the real compute.
		out, _ := client.MemoryCreate(tk, 2*n, n, cap.MemRights)
		if err := client.MemoryCopy(tk, bufOut, out); err != nil {
			t.Fatalf("download: %v", err)
		}
		for i := 0; i < n; i++ {
			if got, want := client.Arena()[2*n+i], byte(i)+byte(2*i); got != want {
				t.Fatalf("out[%d] = %d, want %d", i, got, want)
			}
		}
		if ad.dev.Launches != 1 {
			t.Errorf("launches = %d", ad.dev.Launches)
		}
	})
}

func TestKernelNamePreset(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		_, client, ci := setup(tk, t, cl)
		_, load, _, _ := initCtx(tk, t, client, ci)
		inv := loadKernel(tk, t, client, load, "add")
		// The kernel identity is immutable: overwriting the preset
		// name header must fail.
		if _, err := client.Derive(tk, inv, []wire.ImmArg{proc.U64Arg(8, 99)}, nil); !wire.IsStatus(err, wire.StatusImmutable) {
			t.Errorf("kernel-name overwrite: err = %v, want immutable", err)
		}
	})
}

func TestLoadUnknownKernel(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		_, client, ci := setup(tk, t, cl)
		_, load, _, _ := initCtx(tk, t, client, ci)
		name := "nonexistent"
		d, err := client.Call(tk, load,
			[]wire.ImmArg{proc.U64Arg(8, uint64(len(name))), proc.BytesArg(16, []byte(name))},
			nil, SlotCont)
		if err != nil {
			t.Fatal(err)
		}
		if st := d.U64(0); st != StatusNoKernel {
			t.Errorf("status = %d, want no-kernel", st)
		}
	})
}

func TestErrorContinuationOnBadArgs(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		_, client, ci := setup(tk, t, cl)
		_, load, _, _ := initCtx(tk, t, client, ci)
		inv := loadKernel(tk, t, client, load, "add")
		// Invoke with too few args: the error continuation must fire.
		errReq, errTag, _ := client.ReplyRequest(tk)
		f := client.WaitTag(errTag)
		if err := client.Invoke(tk, inv, nil, []proc.Arg{{Slot: SlotError, Cap: errReq}}); err != nil {
			t.Fatal(err)
		}
		d, err := f.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		d.Done()
		if st := d.U64(0); st != StatusBadArg {
			t.Errorf("error continuation status = %d, want bad-arg", st)
		}
	})
}

func TestAllocFreeCycle(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		_, client, ci := setup(tk, t, cl)
		alloc, _, free, cleanup := initCtx(tk, t, client, ci)
		_, addr := gpuAlloc(tk, t, client, alloc, 1<<10)
		// Free, then the space is reusable.
		d, err := client.Call(tk, free, []wire.ImmArg{proc.U64Arg(8, addr)}, nil, SlotCont)
		if err != nil {
			t.Fatal(err)
		}
		_ = d
		_, addr2 := gpuAlloc(tk, t, client, alloc, 1<<10)
		if addr2 != addr {
			t.Errorf("freed GPU memory not reused: %d vs %d", addr2, addr)
		}
		if _, err := client.Call(tk, cleanup, nil, nil, SlotCont); err != nil {
			t.Fatal(err)
		}
	})
}

func TestKernelSerializationOnDevice(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := NewDevice(cl.K, DefaultConfig())
		dev.Register("slow", func(mem []byte, args []uint64) uint64 { return 0 },
			func([]uint64) sim.Time { return us(100) })
		busy := 0
		maxBusy := 0
		dev.Register("probe", func(mem []byte, args []uint64) uint64 { return 0 },
			func([]uint64) sim.Time { return us(100) })
		_ = busy
		_ = maxBusy
		// Two concurrent Execs must serialize: total ≥ 220µs.
		var wg sim.WaitGroup
		wg.Add(2)
		start := tk.Now()
		for i := 0; i < 2; i++ {
			cl.K.Spawn("exec", func(et *sim.Task) {
				dev.Exec(et, "slow", nil, nil)
				wg.Done()
			})
		}
		wg.Wait(tk)
		total := tk.Now() - start
		if total < us(220) {
			t.Errorf("two 110µs kernels finished in %v; device must serialize", total)
		}
	})
}

func TestKernelArgsDecoding(t *testing.T) {
	imms := make([]byte, 40)
	binary.LittleEndian.PutUint64(imms[24:], 7)
	binary.LittleEndian.PutUint64(imms[32:], 9)
	args := kernelArgs(imms, 17) // rounds up to 24
	if len(args) != 2 || args[0] != 7 || args[1] != 9 {
		t.Fatalf("args = %v", args)
	}
	if got := ArgOffset(3, 1); got != 32 {
		t.Errorf("ArgOffset(3,1) = %d, want 32", got)
	}
}

// TestUpstreamFailurePropagates: a kernel Request chained as a failed
// service's continuation (non-zero status in imm[0:8)) must not run
// the kernel; the error continuation fires with the upstream status.
func TestUpstreamFailurePropagates(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		ad, client, ci := setup(tk, t, cl)
		_, load, _, _ := initCtx(tk, t, client, ci)
		inv := loadKernel(tk, t, client, load, "add")
		errReq, errTag, _ := client.ReplyRequest(tk)
		f := client.WaitTag(errTag)
		// Simulate the upstream service reporting failure 7.
		if err := client.Invoke(tk, inv,
			[]wire.ImmArg{proc.U64Arg(0, 7)},
			[]proc.Arg{{Slot: SlotError, Cap: errReq}}); err != nil {
			t.Fatal(err)
		}
		d, err := f.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		d.Done()
		if st := d.U64(0); st != 7 {
			t.Errorf("error continuation status = %d, want upstream 7", st)
		}
		if ad.dev.Launches != 0 {
			t.Errorf("kernel launched %d times despite upstream failure", ad.dev.Launches)
		}
	})
}

// TestPipelineUpstreamFailureEndToEnd: a storage read that fails (out
// of volume bounds) must not run the kernel, and the failure reaches
// the application through the whole chain.
func TestPipelineUpstreamFailureEndToEnd(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		// Build GPU side.
		ad, client, ci := setup(tk, t, cl)
		alloc, load, _, _ := initCtx(tk, t, client, ci)
		buf, addr := gpuAlloc(tk, t, client, alloc, 4096)
		inv := loadKernel(tk, t, client, load, "add")

		// Build storage side on node 2.
		nd := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		na := nvme.NewAdaptor(cl, 2, "nvme0", nd, nvme.AdaptorConfig{})
		if err := na.Start(tk); err != nil {
			t.Fatal(err)
		}
		vc, _ := proc.GrantCap(na.P, na.VolCreate, client)
		vd, err := client.Call(tk, vc, []wire.ImmArg{proc.U64Arg(nvme.ImmVol, 64<<10)}, nil, nvme.SlotCont)
		if err != nil || vd.U64(0) != 0 {
			t.Fatalf("volcreate: %v/%d", err, vd.U64(0))
		}
		rd, _ := vd.Cap(nvme.SlotVolRead)

		// Chain: block read (deliberately out of bounds) → kernel.
		ao := ArgOffset(len("add"), 0)
		reply, tag, _ := client.ReplyRequest(tk)
		kr, err := client.Derive(tk, inv,
			[]wire.ImmArg{proc.BytesArg(ao, make([]byte, 32))},
			[]proc.Arg{{Slot: SlotSuccess, Cap: reply}, {Slot: SlotError, Cap: reply}})
		if err != nil {
			t.Fatal(err)
		}
		f := client.WaitTag(tag)
		if err := client.Invoke(tk, rd,
			[]wire.ImmArg{proc.U64Arg(nvme.ImmOff, 60<<10), proc.U64Arg(nvme.ImmLen, 8<<10)}, // past the volume end
			[]proc.Arg{{Slot: nvme.SlotData, Cap: buf}, {Slot: nvme.SlotCont, Cap: kr}}); err != nil {
			t.Fatal(err)
		}
		d, err := f.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		d.Done()
		if st := d.U64(0); st == 0 {
			t.Error("chained failure reported success to the application")
		}
		if ad.dev.Launches != 0 {
			t.Errorf("kernel ran %d times on a failed read", ad.dev.Launches)
		}
		_ = addr
	})
}

package gpu

import (
	"testing"

	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// TestMultipleClientsShareAdaptor: several clients with their own
// contexts and buffers invoke kernels concurrently; every client's
// data stays isolated and all invocations complete (Figure 9's
// multi-client serving).
func TestMultipleClientsShareAdaptor(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := NewDevice(cl.K, DefaultConfig())
		dev.Register("fill", func(mem []byte, args []uint64) uint64 {
			addr, n, v := args[0], args[1], args[2]
			for i := uint64(0); i < n; i++ {
				mem[addr+i] = byte(v)
			}
			return 0
		}, func([]uint64) sim.Time { return us(30) })
		ad := NewAdaptor(cl, 1, "gpu0", dev)
		if err := ad.Start(tk); err != nil {
			t.Fatal(err)
		}

		const clients = 4
		var wg sim.WaitGroup
		wg.Add(clients)
		for c := 0; c < clients; c++ {
			c := c
			client := proc.Attach(cl, c%3, "client", 4096)
			ci, err := proc.GrantCap(ad.P, ad.CtxInit, client)
			if err != nil {
				t.Fatal(err)
			}
			cl.K.Spawn("client-work", func(ct *sim.Task) {
				defer wg.Done()
				alloc, load, _, _ := initCtx(ct, t, client, ci)
				buf, addr := gpuAlloc(ct, t, client, alloc, 64)
				inv := loadKernel(ct, t, client, load, "fill")
				ao := ArgOffset(len("fill"), 0)
				for round := 0; round < 3; round++ {
					d, err := client.Call(ct, inv, []wire.ImmArg{
						proc.U64Arg(ao, addr), proc.U64Arg(ao+8, 64), proc.U64Arg(ao+16, uint64(c+1)),
					}, nil, SlotSuccess)
					if err != nil {
						t.Errorf("client %d round %d: %v", c, round, err)
						return
					}
					if st := d.U64(0); st != StatusOK {
						t.Errorf("client %d: kernel status %d", c, st)
						return
					}
				}
				// Download and verify this client's region.
				out, err := client.MemoryCreate(ct, 0, 64, 0xf)
				if err != nil {
					t.Error(err)
					return
				}
				if err := client.MemoryCopy(ct, buf, out); err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 64; i++ {
					if client.Arena()[i] != byte(c+1) {
						t.Errorf("client %d: buffer polluted by another client", c)
						return
					}
				}
			})
		}
		wg.Wait(tk)
		if dev.Launches != clients*3 {
			t.Errorf("launches = %d, want %d", dev.Launches, clients*3)
		}
	})
}

// TestContextCleanupFreesAllBuffers: cleanup releases every buffer of
// the context so the space is reusable by others.
func TestContextCleanupFreesAllBuffers(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		cfg := DefaultConfig()
		cfg.MemSize = 4096 // tiny GPU memory
		dev := NewDevice(cl.K, cfg)
		dev.Register("nop", func([]byte, []uint64) uint64 { return 0 }, func([]uint64) sim.Time { return 0 })
		ad := NewAdaptor(cl, 1, "gpu0", dev)
		if err := ad.Start(tk); err != nil {
			t.Fatal(err)
		}
		client := proc.Attach(cl, 0, "client", 0)
		ci, _ := proc.GrantCap(ad.P, ad.CtxInit, client)
		alloc, _, _, cleanup := initCtx(tk, t, client, ci)
		// Exhaust GPU memory.
		gpuAlloc(tk, t, client, alloc, 2048)
		gpuAlloc(tk, t, client, alloc, 2048)
		d, err := client.Call(tk, alloc, []wire.ImmArg{proc.U64Arg(8, 1024)}, nil, SlotCont)
		if err != nil {
			t.Fatal(err)
		}
		if st := d.U64(0); st != StatusNoMem {
			t.Fatalf("over-alloc status = %d, want no-mem", st)
		}
		// Cleanup frees everything.
		if _, err := client.Call(tk, cleanup, nil, nil, SlotCont); err != nil {
			t.Fatal(err)
		}
		alloc2, _, _, _ := initCtx(tk, t, client, ci)
		gpuAlloc(tk, t, client, alloc2, 4096) // the whole GPU again
	})
}

package nvme

import (
	"bytes"
	"testing"
	"time"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

func us(f float64) sim.Time { return sim.Time(f * float64(time.Microsecond)) }

func runSim(t *testing.T, fn func(tk *sim.Task, k *sim.Kernel)) {
	t.Helper()
	k := sim.New(1)
	done := false
	k.Spawn("test-main", func(tk *sim.Task) { fn(tk, k); done = true })
	k.Run()
	k.Shutdown()
	if !done {
		t.Fatal("test did not complete (deadlock?)")
	}
}

func TestDeviceDataIntegrity(t *testing.T) {
	runSim(t, func(tk *sim.Task, k *sim.Kernel) {
		d := NewDevice(k, DefaultConfig())
		in := bytes.Repeat([]byte("storage!"), 1024) // 8 KiB, page-unaligned offset
		if err := d.Write(tk, 12345, in); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, len(in))
		if err := d.Read(tk, 12345, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(in, out) {
			t.Fatal("device corrupted data")
		}
		// Unwritten space reads as zeros.
		z := make([]byte, 100)
		if err := d.Read(tk, 1<<30, z); err != nil {
			t.Fatal(err)
		}
		for _, b := range z {
			if b != 0 {
				t.Fatal("unwritten space not zero")
			}
		}
	})
}

func TestDeviceBounds(t *testing.T) {
	runSim(t, func(tk *sim.Task, k *sim.Kernel) {
		d := NewDevice(k, DefaultConfig())
		buf := make([]byte, 16)
		if err := d.Read(tk, d.Capacity()-8, buf); err != ErrOutOfRange {
			t.Errorf("read past end: %v", err)
		}
		if err := d.Write(tk, -1, buf); err != ErrOutOfRange {
			t.Errorf("negative write: %v", err)
		}
	})
}

func TestRandomReadLatencyAbout70us(t *testing.T) {
	runSim(t, func(tk *sim.Task, k *sim.Kernel) {
		d := NewDevice(k, DefaultConfig())
		buf := make([]byte, 4096)
		start := tk.Now()
		if err := d.Read(tk, 512*1024*1024, buf); err != nil {
			t.Fatal(err)
		}
		lat := tk.Now() - start
		if lat < us(60) || lat > us(80) {
			t.Errorf("random 4KiB read = %v, want ~70µs (§6.4)", lat)
		}
	})
}

func TestSequentialReadsHitReadAhead(t *testing.T) {
	runSim(t, func(tk *sim.Task, k *sim.Kernel) {
		d := NewDevice(k, DefaultConfig())
		buf := make([]byte, 4096)
		d.Read(tk, 0, buf) // miss, arms read-ahead
		start := tk.Now()
		d.Read(tk, 4096, buf) // sequential: hit
		seq := tk.Now() - start
		start = tk.Now()
		d.Read(tk, 1<<30, buf) // random: miss
		rnd := tk.Now() - start
		if seq >= rnd {
			t.Errorf("sequential read (%v) not faster than random (%v)", seq, rnd)
		}
		if d.RAHits != 1 || d.RAMiss != 2 {
			t.Errorf("hits=%d miss=%d", d.RAHits, d.RAMiss)
		}
	})
}

func TestWriteCacheAbsorbsThenThrottles(t *testing.T) {
	runSim(t, func(tk *sim.Task, k *sim.Kernel) {
		cfg := DefaultConfig()
		cfg.DirtyLimit = 1 << 20 // 1 MiB cache
		d := NewDevice(k, cfg)
		buf := make([]byte, 256*1024)
		start := tk.Now()
		d.Write(tk, 0, buf) // absorbed
		fast := tk.Now() - start
		// Blow through the cache.
		for i := 0; i < 8; i++ {
			d.Write(tk, int64(i)*int64(len(buf)), buf)
		}
		start = tk.Now()
		d.Write(tk, 0, buf) // throttled
		slow := tk.Now() - start
		if slow <= fast {
			t.Errorf("throttled write (%v) not slower than absorbed write (%v)", slow, fast)
		}
	})
}

// --- adaptor integration ---

// setupAdaptor builds a cluster with an NVMe adaptor on node 2 and a
// client on node 0, granting the client the VolCreate Request.
func setupAdaptor(tk *sim.Task, t *testing.T, cl *core.Cluster) (*Adaptor, *proc.Process, proc.Cap) {
	t.Helper()
	dev := NewDevice(cl.K, DefaultConfig())
	ad := NewAdaptor(cl, 2, "nvme0", dev, AdaptorConfig{})
	if err := ad.Start(tk); err != nil {
		t.Fatal(err)
	}
	client := proc.Attach(cl, 0, "client", 4<<20)
	vc, err := proc.GrantCap(ad.P, ad.VolCreate, client)
	if err != nil {
		t.Fatal(err)
	}
	return ad, client, vc
}

// createVolume drives TagVolCreate from the client.
func createVolume(tk *sim.Task, t *testing.T, client *proc.Process, vc proc.Cap, size uint64) (rd, wr proc.Cap) {
	t.Helper()
	d, err := client.Call(tk, vc, []wire.ImmArg{proc.U64Arg(ImmVol, size)}, nil, SlotCont)
	if err != nil {
		t.Fatalf("volcreate: %v", err)
	}
	if st := d.U64(0); st != StatusOK {
		t.Fatalf("volcreate status = %d", st)
	}
	rd, ok1 := d.Cap(SlotVolRead)
	wr, ok2 := d.Cap(SlotVolWrite)
	if !ok1 || !ok2 {
		t.Fatal("volcreate reply missing volume requests")
	}
	return rd, wr
}

func TestAdaptorWriteThenRead(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) {
		defer func() { done = true }()
		_, client, vc := setupAdaptor(tk, t, cl)
		rd, wr := createVolume(tk, t, client, vc, 1<<20)

		payload := bytes.Repeat([]byte("fractos-blocks!!"), 512) // 8 KiB
		copy(client.Arena(), payload)
		src, _ := client.MemoryCreate(tk, 0, uint64(len(payload)), cap.MemRights)

		// Write: invoke the volume-write Request with offset/len and a
		// reply continuation.
		dW, err := client.Call(tk, wr,
			[]wire.ImmArg{proc.U64Arg(ImmOff, 4096), proc.U64Arg(ImmLen, uint64(len(payload)))},
			[]proc.Arg{{Slot: SlotData, Cap: src}}, SlotCont)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		if st := dW.U64(0); st != StatusOK {
			t.Fatalf("write status = %d", st)
		}

		// Read back into a different client buffer.
		dstOff := 64 * 1024
		dst, _ := client.MemoryCreate(tk, uint64(dstOff), uint64(len(payload)), cap.MemRights)
		dR, err := client.Call(tk, rd,
			[]wire.ImmArg{proc.U64Arg(ImmOff, 4096), proc.U64Arg(ImmLen, uint64(len(payload)))},
			[]proc.Arg{{Slot: SlotData, Cap: dst}}, SlotCont)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if st := dR.U64(0); st != StatusOK {
			t.Fatalf("read status = %d", st)
		}
		if !bytes.Equal(client.Arena()[dstOff:dstOff+len(payload)], payload) {
			t.Fatal("read-back mismatch")
		}
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("deadlock")
	}
}

func TestAdaptorRejectsBadRequests(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) {
		defer func() { done = true }()
		_, client, vc := setupAdaptor(tk, t, cl)
		rd, _ := createVolume(tk, t, client, vc, 64*1024)
		dst, _ := client.MemoryCreate(tk, 0, 4096, cap.MemRights)

		// Out-of-volume read.
		d, err := client.Call(tk, rd,
			[]wire.ImmArg{proc.U64Arg(ImmOff, 62*1024), proc.U64Arg(ImmLen, 4096)},
			[]proc.Arg{{Slot: SlotData, Cap: dst}}, SlotCont)
		if err != nil {
			t.Fatal(err)
		}
		if st := d.U64(0); st != StatusBounds {
			t.Errorf("oob read status = %d, want bounds", st)
		}

		// Destination too small.
		small, _ := client.MemoryCreate(tk, 8192, 1024, cap.MemRights)
		d, err = client.Call(tk, rd,
			[]wire.ImmArg{proc.U64Arg(ImmOff, 0), proc.U64Arg(ImmLen, 4096)},
			[]proc.Arg{{Slot: SlotData, Cap: small}}, SlotCont)
		if err != nil {
			t.Fatal(err)
		}
		if st := d.U64(0); st != StatusBounds {
			t.Errorf("small-dst status = %d, want bounds", st)
		}
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("deadlock")
	}
}

// TestVolumeIsolation: a second volume cannot see the first volume's
// data — volume ids preset in the Requests are immutable.
func TestVolumeIsolation(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) {
		defer func() { done = true }()
		_, client, vc := setupAdaptor(tk, t, cl)
		_, wr1 := createVolume(tk, t, client, vc, 64*1024)
		rd2, _ := createVolume(tk, t, client, vc, 64*1024)

		secret := bytes.Repeat([]byte{0x5a}, 4096)
		copy(client.Arena(), secret)
		src, _ := client.MemoryCreate(tk, 0, 4096, cap.MemRights)
		d, _ := client.Call(tk, wr1,
			[]wire.ImmArg{proc.U64Arg(ImmOff, 0), proc.U64Arg(ImmLen, 4096)},
			[]proc.Arg{{Slot: SlotData, Cap: src}}, SlotCont)
		if st := d.U64(0); st != StatusOK {
			t.Fatalf("write status %d", st)
		}

		// Attempting to overwrite the preset volume id must fail.
		if _, err := client.Derive(tk, rd2, []wire.ImmArg{proc.U64Arg(ImmVol, 1)}, nil); !wire.IsStatus(err, wire.StatusImmutable) {
			t.Errorf("vol-id overwrite: err = %v, want immutable", err)
		}

		// Reading volume 2 at offset 0 sees zeros, not volume 1 data.
		dst, _ := client.MemoryCreate(tk, 8192, 4096, cap.MemRights)
		d, _ = client.Call(tk, rd2,
			[]wire.ImmArg{proc.U64Arg(ImmOff, 0), proc.U64Arg(ImmLen, 4096)},
			[]proc.Arg{{Slot: SlotData, Cap: dst}}, SlotCont)
		if st := d.U64(0); st != StatusOK {
			t.Fatalf("read status %d", st)
		}
		for _, b := range client.Arena()[8192 : 8192+4096] {
			if b != 0 {
				t.Fatal("volume isolation violated")
			}
		}
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("deadlock")
	}
}

package nvme

import (
	"fmt"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// The block-device adaptor's RPC interface, as Request tags and
// argument conventions. Adaptors are ordinary untrusted Processes that
// translate Requests into device operations (§3.1).
const (
	// TagVolCreate allocates a logical volume.
	// imm[8:16) = size in bytes; caps: SlotCont = reply continuation.
	// The reply carries imm[8:16) = volume id and caps SlotVolRead /
	// SlotVolWrite = this volume's read/write Requests.
	TagVolCreate uint64 = 0x10
	// TagVolRead reads from a volume.
	// imm[8:16) = volume id (preset by the adaptor), [16:24) = offset,
	// [24:32) = length; caps: SlotData = destination Memory,
	// SlotCont = continuation.
	TagVolRead uint64 = 0x11
	// TagVolWrite writes to a volume; SlotData is the source Memory.
	TagVolWrite uint64 = 0x12
)

// Immediate layout of every block Request. Offset [0,8) is reserved
// for the upstream-status convention so block Requests can themselves
// be chained as continuations of other services (§3.4 composition): a
// non-zero value there means the upstream producer failed and the
// operation must not run.
const (
	ImmStatus = 0
	ImmVol    = 8 // volume id (TagVolRead/Write) or size (TagVolCreate)
	ImmOff    = 16
	ImmLen    = 24
)

// Argument slots of the block-device interface.
const (
	// SlotData carries the data Memory capability.
	SlotData uint16 = 0
	// SlotCont carries the continuation Request, invoked with
	// imm[0:8) = status (0 = success) when the operation completes.
	SlotCont uint16 = 1
	// SlotVolRead / SlotVolWrite carry the per-volume Requests in a
	// TagVolCreate reply.
	SlotVolRead  uint16 = 0
	SlotVolWrite uint16 = 1
)

// Block-operation status codes delivered to continuations.
const (
	StatusOK      uint64 = 0
	StatusBadVol  uint64 = 1
	StatusBounds  uint64 = 2
	StatusTooBig  uint64 = 3
	StatusCopyErr uint64 = 4
	StatusDevErr  uint64 = 5
)

// MaxIO is the largest single block operation (Figure 11 uses 1 MiB).
const MaxIO = 1 << 20

// AdaptorConfig sizes the adaptor.
type AdaptorConfig struct {
	// QueueDepth bounds concurrently served operations.
	QueueDepth int
	// StagingBufs is the number of MaxIO staging buffers.
	StagingBufs int
}

func (c AdaptorConfig) withDefaults() AdaptorConfig {
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.StagingBufs == 0 {
		c.StagingBufs = 8
	}
	return c
}

type volume struct {
	off  int64
	size int64
}

// Adaptor exposes one NVMe device as FractOS Requests. It runs on the
// host CPU co-located with the device, like the paper's prototype.
type Adaptor struct {
	P   *proc.Process
	dev *Device
	cfg AdaptorConfig

	vols    map[uint64]volume
	nextVol uint64
	devFree int64 // bump allocator over device space

	qd       *sim.Semaphore
	stageSem *sim.Semaphore
	stages   []stageBuf

	// VolCreate is the adaptor's root Request; grant it to the storage
	// stack (the FS service) at deployment time.
	VolCreate proc.Cap
}

type stageBuf struct {
	off int
	cap proc.Cap // Memory capability covering the whole buffer
}

// NewAdaptor attaches a block-device adaptor Process on the given
// node.
func NewAdaptor(cl *core.Cluster, node int, name string, dev *Device, cfg AdaptorConfig) *Adaptor {
	cfg = cfg.withDefaults()
	return &Adaptor{
		P:        proc.Attach(cl, node, name, cfg.StagingBufs*MaxIO),
		dev:      dev,
		cfg:      cfg,
		vols:     make(map[uint64]volume),
		qd:       sim.NewSemaphore(cfg.QueueDepth),
		stageSem: sim.NewSemaphore(cfg.StagingBufs),
	}
}

// Start registers the adaptor's Requests and spawns its serve loop.
// Must run in task context before clients are wired up.
func (a *Adaptor) Start(t *sim.Task) error {
	for i := 0; i < a.cfg.StagingBufs; i++ {
		off := i * MaxIO
		c, err := a.P.MemoryCreate(t, uint64(off), MaxIO, cap.MemRights)
		if err != nil {
			return fmt.Errorf("nvme adaptor: staging memory: %w", err)
		}
		a.stages = append(a.stages, stageBuf{off: off, cap: c})
	}
	vc, err := a.P.RequestCreate(t, TagVolCreate, nil, nil)
	if err != nil {
		return fmt.Errorf("nvme adaptor: volcreate request: %w", err)
	}
	a.VolCreate = vc
	a.P.Kernel().Spawn("nvme-adaptor", a.serve)
	return nil
}

func (a *Adaptor) serve(t *sim.Task) {
	for {
		d, ok := a.P.Receive(t)
		if !ok {
			return
		}
		a.qd.Acquire(t)
		a.P.Kernel().Spawn("nvme-op", func(ht *sim.Task) {
			defer a.qd.Release()
			a.handle(ht, d)
		})
	}
}

func (a *Adaptor) handle(t *sim.Task, d *proc.Delivery) {
	defer d.Done()
	switch d.Tag {
	case TagVolCreate:
		a.handleVolCreate(t, d)
	case TagVolRead:
		a.handleIO(t, d, false)
	case TagVolWrite:
		a.handleIO(t, d, true)
	}
}

func (a *Adaptor) handleVolCreate(t *sim.Task, d *proc.Delivery) {
	size := int64(d.U64(ImmVol))
	cont, ok := d.Cap(SlotCont)
	if !ok {
		return
	}
	if size <= 0 || a.devFree+size > a.dev.Capacity() {
		a.P.Invoke(t, cont, []wire.ImmArg{proc.U64Arg(0, StatusBounds)}, nil)
		return
	}
	a.nextVol++
	id := a.nextVol
	a.vols[id] = volume{off: a.devFree, size: size}
	a.devFree += size

	rd, err1 := a.P.RequestCreate(t, TagVolRead, []wire.ImmArg{proc.U64Arg(ImmVol, id)}, nil)
	wr, err2 := a.P.RequestCreate(t, TagVolWrite, []wire.ImmArg{proc.U64Arg(ImmVol, id)}, nil)
	if err1 != nil || err2 != nil {
		a.P.Invoke(t, cont, []wire.ImmArg{proc.U64Arg(0, StatusDevErr)}, nil)
		return
	}
	a.P.Invoke(t, cont,
		[]wire.ImmArg{proc.U64Arg(ImmVol, id)},
		[]proc.Arg{{Slot: SlotVolRead, Cap: rd}, {Slot: SlotVolWrite, Cap: wr}})
}

// handleIO serves a volume read or write: stage through a local
// buffer, moving the bytes between the device and the caller-provided
// Memory capability with memory_copy — the adaptor never needs to know
// where that Memory lives (§2.2's interface encapsulation).
func (a *Adaptor) handleIO(t *sim.Task, d *proc.Delivery, isWrite bool) {
	cont, haveCont := d.Cap(SlotCont)
	fail := func(code uint64) {
		if haveCont {
			a.P.Invoke(t, cont, []wire.ImmArg{proc.U64Arg(0, code)}, nil)
		}
	}
	// Upstream-status convention: a chained producer that failed
	// reports its status in imm[0,8) — propagate instead of touching
	// the device.
	if st := d.U64(ImmStatus); st != 0 {
		fail(st)
		return
	}
	vol, ok := a.vols[d.U64(ImmVol)]
	if !ok {
		fail(StatusBadVol)
		return
	}
	off, n := int64(d.U64(ImmOff)), int64(d.U64(ImmLen))
	if n <= 0 || off < 0 || off+n > vol.size {
		fail(StatusBounds)
		return
	}
	if n > MaxIO {
		fail(StatusTooBig)
		return
	}
	data, ok := d.Cap(SlotData)
	if !ok || data.Size() < uint64(n) || (isWrite && data.Size() != uint64(n)) {
		fail(StatusBounds)
		return
	}

	a.stageSem.Acquire(t)
	sb := a.stages[len(a.stages)-1]
	a.stages = a.stages[:len(a.stages)-1]
	defer func() {
		a.stages = append(a.stages, sb)
		a.stageSem.Release()
	}()

	view, err := a.P.MemoryDiminish(t, sb.cap, 0, uint64(n), 0)
	if err != nil {
		fail(StatusDevErr)
		return
	}
	defer a.P.Drop(t, view)
	buf := a.P.Arena()[sb.off : sb.off+int(n)]

	if isWrite {
		// Pull the caller's bytes, then commit to flash.
		if err := a.P.MemoryCopy(t, data, view); err != nil {
			fail(StatusCopyErr)
			return
		}
		if err := a.dev.Write(t, vol.off+off, buf); err != nil {
			fail(StatusDevErr)
			return
		}
	} else {
		if err := a.dev.Read(t, vol.off+off, buf); err != nil {
			fail(StatusDevErr)
			return
		}
		if err := a.P.MemoryCopy(t, view, data); err != nil {
			fail(StatusCopyErr)
			return
		}
	}
	if haveCont {
		a.P.Invoke(t, cont, []wire.ImmArg{proc.U64Arg(0, StatusOK)}, nil)
	}
}

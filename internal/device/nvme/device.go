// Package nvme models an NVMe SSD (the Samsung 970evo Plus of
// Table 2) and implements the FractOS block-device adaptor that
// exposes it as logical-volume read/write Requests (§5).
//
// The device stores real bytes (sparse 4 KiB pages) under a timing
// model: ~70 µs random 4 KiB reads (§6.4), a read-ahead cache that
// makes sequential reads cheap, a DRAM write cache that absorbs writes
// until a dirty limit, and a flash-bandwidth-limited drain.
package nvme

import (
	"errors"
	"fmt"
	"time"

	"fractos/internal/sim"
)

const pageSize = 4096

// Config is the device timing/geometry model.
type Config struct {
	// Capacity in bytes.
	Capacity int64
	// RandomReadLatency: fixed cost of a random (cache-miss) read.
	RandomReadLatency sim.Time
	// CachedReadLatency: fixed cost when read-ahead hits.
	CachedReadLatency sim.Time
	// WriteCacheLatency: fixed cost of a cache-absorbed write.
	WriteCacheLatency sim.Time
	// ReadBW / WriteBW: flash media bandwidth (bytes/sec).
	ReadBW  float64
	WriteBW float64
	// ReadAhead: bytes prefetched past a sequential read.
	ReadAhead int64
	// DirtyLimit: write-cache size; beyond it writes throttle to
	// WriteBW.
	DirtyLimit int64
}

// DefaultConfig models the paper's SSD on its 10 Gbps fabric.
func DefaultConfig() Config {
	return Config{
		Capacity:          1 << 34, // 16 GiB simulated
		RandomReadLatency: 65 * sim.Time(time.Microsecond),
		CachedReadLatency: 8 * sim.Time(time.Microsecond),
		WriteCacheLatency: 12 * sim.Time(time.Microsecond),
		ReadBW:            3.2e9,
		WriteBW:           2.2e9,
		ReadAhead:         1 << 20,
		DirtyLimit:        1 << 28,
	}
}

// Device is one simulated SSD. It is owned by a single adaptor Process
// and accessed from task context only.
type Device struct {
	k     *sim.Kernel
	cfg   Config
	pages map[int64][]byte

	channel   sim.Time // media-channel busy-until (serializes transfers)
	raStart   int64    // current read-ahead window [raStart, raEnd)
	raEnd     int64
	dirty     int64
	lastDrain sim.Time

	// Counters for tests and the evaluation harness.
	Reads, Writes  int64
	BytesR, BytesW int64
	RAHits, RAMiss int64
}

// ErrOutOfRange is returned for accesses beyond the device capacity.
var ErrOutOfRange = errors.New("nvme: access out of range")

// NewDevice creates an SSD.
func NewDevice(k *sim.Kernel, cfg Config) *Device {
	if cfg.Capacity == 0 {
		cfg = DefaultConfig()
	}
	return &Device{k: k, cfg: cfg, pages: make(map[int64][]byte)}
}

// Capacity returns the device size in bytes.
func (d *Device) Capacity() int64 { return d.cfg.Capacity }

// reserve books the media channel for n bytes at bandwidth bw and
// returns the added delay the caller must sleep.
func (d *Device) reserve(n int, bw float64) sim.Time {
	now := d.k.Now()
	start := now
	if d.channel > start {
		start = d.channel
	}
	dur := sim.Time(float64(n) / bw * 1e9)
	d.channel = start + dur
	return d.channel - now
}

// drainDirty credits background cache flushes since the last call.
func (d *Device) drainDirty() {
	now := d.k.Now()
	if d.lastDrain == 0 {
		d.lastDrain = now
	}
	elapsed := now - d.lastDrain
	d.lastDrain = now
	drained := int64(float64(elapsed) / 1e9 * d.cfg.WriteBW)
	d.dirty -= drained
	if d.dirty < 0 {
		d.dirty = 0
	}
}

// Read copies len(buf) bytes at offset off into buf, sleeping for the
// modeled device time.
func (d *Device) Read(t *sim.Task, off int64, buf []byte) error {
	n := len(buf)
	if off < 0 || off+int64(n) > d.cfg.Capacity {
		return ErrOutOfRange
	}
	lat := d.cfg.RandomReadLatency
	if off >= d.raStart && off+int64(n) <= d.raEnd {
		lat = d.cfg.CachedReadLatency
		d.RAHits++
	} else {
		d.RAMiss++
	}
	// Slide the read-ahead window past this access.
	d.raStart = off
	d.raEnd = off + int64(n) + d.cfg.ReadAhead
	lat += d.reserve(n, d.cfg.ReadBW)
	t.Sleep(lat)
	d.copyOut(off, buf)
	d.Reads++
	d.BytesR += int64(n)
	return nil
}

// Write stores buf at offset off, sleeping for the modeled device
// time. Writes are absorbed by the DRAM cache until DirtyLimit, then
// throttle to flash bandwidth (the behaviour that makes the paper's
// Disaggregated Baseline writes fast in Figure 10).
func (d *Device) Write(t *sim.Task, off int64, buf []byte) error {
	n := len(buf)
	if off < 0 || off+int64(n) > d.cfg.Capacity {
		return ErrOutOfRange
	}
	d.drainDirty()
	lat := d.cfg.WriteCacheLatency
	if d.dirty+int64(n) > d.cfg.DirtyLimit {
		lat += d.reserve(n, d.cfg.WriteBW)
	} else {
		// DRAM absorbs: only a small per-byte cost.
		lat += sim.Time(float64(n) / (8e9) * 1e9)
	}
	d.dirty += int64(n)
	t.Sleep(lat)
	d.copyIn(off, buf)
	d.Writes++
	d.BytesW += int64(n)
	return nil
}

func (d *Device) copyOut(off int64, buf []byte) {
	for n := 0; n < len(buf); {
		page := (off + int64(n)) / pageSize
		po := int((off + int64(n)) % pageSize)
		c := pageSize - po
		if c > len(buf)-n {
			c = len(buf) - n
		}
		if p, ok := d.pages[page]; ok {
			copy(buf[n:n+c], p[po:po+c])
		} else {
			for i := n; i < n+c; i++ {
				buf[i] = 0
			}
		}
		n += c
	}
}

func (d *Device) copyIn(off int64, buf []byte) {
	for n := 0; n < len(buf); {
		page := (off + int64(n)) / pageSize
		po := int((off + int64(n)) % pageSize)
		c := pageSize - po
		if c > len(buf)-n {
			c = len(buf) - n
		}
		p, ok := d.pages[page]
		if !ok {
			p = make([]byte, pageSize)
			d.pages[page] = p
		}
		copy(p[po:po+c], buf[n:n+c])
		n += c
	}
}

// String describes the device.
func (d *Device) String() string {
	return fmt.Sprintf("nvme(%d GiB, %d pages resident)", d.cfg.Capacity>>30, len(d.pages))
}

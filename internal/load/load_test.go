package load

import (
	"math/rand"
	"sort"
	"testing"

	"fractos/internal/sim"
)

// --- histogram geometry -------------------------------------------------

// TestBucketGeometry: every non-negative value lands in a bucket whose
// upper bound contains it within the documented 33/32 relative error,
// and buckets partition the value space monotonically.
func TestBucketGeometry(t *testing.T) {
	check := func(v sim.Time) {
		t.Helper()
		idx := bucketOf(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", idx, up, v)
		}
		if idx > 0 && bucketUpper(idx-1) >= v {
			t.Fatalf("value %d also fits bucket %d (upper %d)", v, idx-1, bucketUpper(idx-1))
		}
		if uint64(v) < subCount {
			if up != v {
				t.Fatalf("small value %d not exact: upper %d", v, up)
			}
		} else if float64(up) > float64(v)*33.0/32.0 {
			t.Fatalf("bucketUpper(%d)=%d exceeds %d*33/32", idx, up, v)
		}
	}
	for v := sim.Time(0); v < 5000; v++ {
		check(v)
	}
	for shift := uint(5); shift < 63; shift++ {
		for _, d := range []int64{-1, 0, 1} {
			check(sim.Time(int64(1)<<shift + d))
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		check(sim.Time(rng.Int63()))
	}
	// The top bucket covers the largest positive duration.
	if got := bucketOf(sim.Time(1<<63 - 1)); got != numBuckets-1 {
		t.Fatalf("max value bucket = %d, want %d", got, numBuckets-1)
	}
}

// TestQuantileVsSortedReference: for several sample distributions, the
// histogram quantile must bracket the exact (sort-based) quantile:
// exact <= est <= exact*33/32.
func TestQuantileVsSortedReference(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) sim.Time{
		"uniform-small": func(r *rand.Rand) sim.Time { return sim.Time(r.Int63n(100)) },
		"uniform-wide":  func(r *rand.Rand) sim.Time { return sim.Time(r.Int63n(1 << 40)) },
		"exponential":   func(r *rand.Rand) sim.Time { return sim.Time(r.ExpFloat64() * 2e6) },
		"constant":      func(r *rand.Rand) sim.Time { return 12345 },
		"bimodal": func(r *rand.Rand) sim.Time {
			if r.Intn(10) == 0 {
				return sim.Time(50e6 + r.Int63n(1e6)) // slow tail
			}
			return sim.Time(1e6 + r.Int63n(1e5))
		},
	}
	quantiles := []float64{0, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range distributions {
		rng := rand.New(rand.NewSource(7))
		var h Hist
		samples := make([]int64, 0, 4096)
		for i := 0; i < 4096; i++ {
			v := gen(rng)
			h.Record(v)
			samples = append(samples, int64(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			est := h.Quantile(q)
			rank := int(q * float64(len(samples)))
			if rank >= len(samples) {
				rank = len(samples) - 1
			}
			exact := samples[rank]
			if q > 0 {
				// rank ceil(q*n): index ceil(q*n)-1
				r := int(q*float64(len(samples)) + 0.9999999)
				if r > len(samples) {
					r = len(samples)
				}
				exact = samples[r-1]
			} else {
				exact = samples[0]
			}
			if int64(est) < exact {
				t.Errorf("%s q=%g: est %d below exact %d", name, q, est, exact)
			}
			if float64(est) > float64(exact)*33.0/32.0+1 {
				t.Errorf("%s q=%g: est %d exceeds exact %d by more than 33/32", name, q, est, exact)
			}
		}
		if h.Min() != sim.Time(samples[0]) || h.Max() != sim.Time(samples[len(samples)-1]) {
			t.Errorf("%s: min/max not exact: %d/%d vs %d/%d",
				name, h.Min(), h.Max(), samples[0], samples[len(samples)-1])
		}
	}
}

// TestHistExactStats: count, mean, min, max are exact (not bucketed).
func TestHistExactStats(t *testing.T) {
	var h Hist
	vals := []sim.Time{5, 100, 1000, 999999, 3}
	var sum sim.Time
	for _, v := range vals {
		h.Record(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != sum/sim.Time(len(vals)) {
		t.Errorf("mean = %d, want %d", h.Mean(), sum/sim.Time(len(vals)))
	}
	if h.Min() != 3 || h.Max() != 999999 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	h.Record(-50) // clamped to zero
	if h.Min() != 0 {
		t.Errorf("negative sample not clamped: min = %d", h.Min())
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

// TestRecordNoAlloc: the record path must not allocate (it runs inside
// the hot loop of every driver).
func TestRecordNoAlloc(t *testing.T) {
	var h Hist
	v := sim.Time(1)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = (v*31 + 7) % (1 << 40)
	})
	if allocs != 0 {
		t.Errorf("Record allocates %v times per call, want 0", allocs)
	}
}

// --- open-loop arrival process ------------------------------------------

// TestOpenArrivalsDeterministic: the Poisson arrival sequence is a pure
// function of (Rate, Requests, Seed) — byte-stable across runs — and
// is nondecreasing with positive offsets.
func TestOpenArrivalsDeterministic(t *testing.T) {
	o := Open{Rate: 1000, Requests: 256, Seed: 42}
	a, b := o.Arrivals(), o.Arrivals()
	if len(a) != 256 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across runs: %d vs %d", i, a[i], b[i])
		}
		if a[i] <= 0 {
			t.Fatalf("arrival %d not positive: %d", i, a[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d: %d < %d", i, a[i], a[i-1])
		}
	}
	// A different seed or rate must produce a different sequence.
	if c := (Open{Rate: 1000, Requests: 256, Seed: 43}).Arrivals(); c[0] == a[0] && c[1] == a[1] {
		t.Error("seed does not influence arrivals")
	}
	if c := (Open{Rate: 2000, Requests: 256, Seed: 42}).Arrivals(); c[0] != a[0]/2 {
		t.Errorf("rate scaling broken: %d vs %d/2", c[0], a[0])
	}
	// The empirical mean interarrival must be near 1/Rate (1 ms).
	mean := float64(a[len(a)-1]) / float64(len(a))
	if mean < 0.8e6 || mean > 1.25e6 {
		t.Errorf("mean interarrival %.0f ns, want ~1e6", mean)
	}
}

// --- drivers ------------------------------------------------------------

// runSim executes fn as the main task of a bare kernel.
func runSim(t *testing.T, fn func(tk *sim.Task)) {
	t.Helper()
	k := sim.New(1)
	done := false
	k.Spawn("load-test-main", func(tk *sim.Task) { fn(tk); done = true })
	k.Run()
	k.Shutdown()
	if !done {
		t.Fatal("driver test deadlocked")
	}
}

// TestClosedDriver: N clients with a fixed service time produce exact
// counts, the client count as the in-flight high-water mark, and the
// service time as every percentile.
func TestClosedDriver(t *testing.T) {
	runSim(t, func(tk *sim.Task) {
		const svc = sim.Time(1000)
		st := Closed{Clients: 3, PerClient: 4}.Run(tk, func(t_ *sim.Task, client, seq int) error {
			t_.Sleep(svc)
			return nil
		})
		if st.Requests != 12 || st.Errors != 0 {
			t.Errorf("requests/errors = %d/%d", st.Requests, st.Errors)
		}
		if st.InflightHWM != 3 {
			t.Errorf("inflight HWM = %d, want 3", st.InflightHWM)
		}
		if st.Hist.Count() != 12 || st.Hist.P50() < svc {
			t.Errorf("hist count=%d p50=%d", st.Hist.Count(), st.Hist.P50())
		}
		if st.Elapsed() != 4*svc {
			t.Errorf("elapsed = %d, want %d (4 serial requests per client)", st.Elapsed(), 4*svc)
		}
		if tp := st.Throughput(); tp <= 0 {
			t.Errorf("throughput = %f", tp)
		}
	})
}

// TestOpenDriverQueueing: when the service time exceeds the mean
// interarrival time, the open-loop driver must keep offering load —
// in-flight requests pile up and arrival-anchored latency grows well
// past the service time.
func TestOpenDriverQueueing(t *testing.T) {
	runSim(t, func(tk *sim.Task) {
		const svc = sim.Time(5e6) // 5 ms service
		sem := sim.NewSemaphore(1)
		st := Open{Rate: 1000, Requests: 50, Seed: 3}.Run(tk, func(t_ *sim.Task, i int) error {
			sem.Acquire(t_) // single-server queue
			t_.Sleep(svc)
			sem.Release()
			return nil
		})
		if st.Requests != 50 || st.Errors != 0 {
			t.Errorf("requests/errors = %d/%d", st.Requests, st.Errors)
		}
		if st.InflightHWM < 5 {
			t.Errorf("saturated open loop reached only %d in flight", st.InflightHWM)
		}
		// Latency is measured from scheduled arrival: the tail must show
		// the queueing delay, far beyond one service time.
		if st.Hist.P99() < 5*svc {
			t.Errorf("p99 = %d, want queueing delay >> service time %d", st.Hist.P99(), svc)
		}
		if st.Hist.Min() < svc {
			t.Errorf("min latency %d below service time %d", st.Hist.Min(), svc)
		}
	})
}

// TestOpenDriverErrorsCounted: failed requests are excluded from
// goodput and the histogram but counted as errors.
func TestOpenDriverErrorsCounted(t *testing.T) {
	runSim(t, func(tk *sim.Task) {
		errMark := errFor(t)
		st := Open{Rate: 10000, Requests: 10, Seed: 1}.Run(tk, func(t_ *sim.Task, i int) error {
			t_.Sleep(100)
			if i%2 == 1 {
				return errMark
			}
			return nil
		})
		if st.Requests != 5 || st.Errors != 5 {
			t.Errorf("requests/errors = %d/%d, want 5/5", st.Requests, st.Errors)
		}
		if st.Hist.Count() != 5 {
			t.Errorf("hist count = %d, want 5 (errors excluded)", st.Hist.Count())
		}
	})
}

type testErr string

func (e testErr) Error() string { return string(e) }

func errFor(t *testing.T) error { t.Helper(); return testErr("injected") }

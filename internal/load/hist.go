// Package load provides the deterministic workload drivers and the
// streaming latency histogram used by the evaluation harness: a
// closed-loop driver (N clients, think-time-free), an open-loop driver
// (Poisson arrivals off a seeded source — "heavy traffic from millions
// of users" is open-loop, not closed-loop), and a log-bucket histogram
// with zero allocations on the record path, honoring the pooling
// discipline of docs/PERFORMANCE.md.
package load

import (
	"math"
	"math/bits"

	"fractos/internal/sim"
)

// Histogram-bucket geometry: log-linear (HDR-style) buckets. Values
// below 2^subBits land in exact unit buckets; above that, each octave
// is split into 2^subBits linear sub-buckets, so any recorded value
// v is reported as a bucket upper bound est with
//
//	v <= est <= v * (1 + 1/2^subBits) = v * 33/32
//
// i.e. quantiles carry at most ~3.1% relative error, at ~7.4 KiB per
// histogram and no allocation or search on Record.
const (
	subBits  = 5
	subCount = 1 << subBits // 32
	// numBuckets covers every non-negative int64 duration:
	// bits.Len64 <= 63 for positive int64, so the maximum index is
	// ((63-subBits)<<subBits) + 63 - subCount = 1887.
	numBuckets = ((63-subBits)<<subBits + subCount) // 1888
)

// Hist is a streaming log-bucket latency histogram. The zero value is
// ready to use; Record performs no allocations.
type Hist struct {
	counts [numBuckets]uint32
	count  uint64
	sum    sim.Time
	min    sim.Time
	max    sim.Time
}

// bucketOf maps a non-negative duration to its bucket index.
func bucketOf(v sim.Time) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	l := bits.Len64(u)
	return ((l - subBits) << subBits) + int(u>>uint(l-1-subBits)) - subCount
}

// bucketUpper returns the largest duration mapping to bucket idx (the
// value Quantile reports).
func bucketUpper(idx int) sim.Time {
	if idx < subCount {
		return sim.Time(idx)
	}
	l := (idx >> subBits) + subBits // bits.Len64 of the bucket's values
	m := uint64(idx&(subCount-1)) + subCount
	return sim.Time((m+1)<<uint(l-subBits-1) - 1)
}

// Record adds one latency sample. Negative durations are clamped to
// zero. Zero allocations.
func (h *Hist) Record(v sim.Time) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the exact arithmetic mean of the recorded samples.
func (h *Hist) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Min and Max return the exact extremes.
func (h *Hist) Min() sim.Time { return h.min }
func (h *Hist) Max() sim.Time { return h.max }

// Quantile returns the q-quantile (q in [0,1]) as a bucket upper
// bound: for the sample x at rank ceil(q*count), the result est
// satisfies x <= est <= x*33/32. Quantile(0) returns the exact
// minimum; Quantile(1) the bucket bound of the maximum.
func (h *Hist) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += uint64(h.counts[i])
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// P50, P90, P99, P999 are the quantiles the evaluation reports.
func (h *Hist) P50() sim.Time  { return h.Quantile(0.50) }
func (h *Hist) P90() sim.Time  { return h.Quantile(0.90) }
func (h *Hist) P99() sim.Time  { return h.Quantile(0.99) }
func (h *Hist) P999() sim.Time { return h.Quantile(0.999) }

package load

import (
	"math/rand"

	"fractos/internal/sim"
)

// Stats is the result of one driver run: the latency histogram plus
// throughput bookkeeping.
type Stats struct {
	Hist     Hist
	Requests int // completed without error
	Errors   int
	Start    sim.Time // driver start (virtual)
	End      sim.Time // last completion (virtual)
	// InflightHWM is the in-flight high-water mark: for closed-loop
	// runs it equals the client count; for open-loop runs it exposes
	// queue growth past saturation.
	InflightHWM int
}

// Elapsed is the driver's total virtual duration.
func (s *Stats) Elapsed() sim.Time { return s.End - s.Start }

// Throughput returns completed requests per second of virtual time
// (goodput: errors are excluded).
func (s *Stats) Throughput() float64 {
	if s.End <= s.Start {
		return 0
	}
	return float64(s.Requests) / (float64(s.End-s.Start) / 1e9)
}

// Closed is a closed-loop driver: Clients concurrent workers each
// issue PerClient back-to-back requests (no think time). Zero values
// default to 1.
type Closed struct {
	Clients   int
	PerClient int
}

// Run drives req from the calling task's kernel and blocks until every
// request completed. req receives the worker index and the worker's
// request sequence number; its latency is the full call duration.
func (c Closed) Run(tk *sim.Task, req func(t *sim.Task, client, seq int) error) *Stats {
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.PerClient == 0 {
		c.PerClient = 1
	}
	k := tk.Kernel()
	st := &Stats{Start: tk.Now(), InflightHWM: c.Clients}
	var wg sim.WaitGroup
	wg.Add(c.Clients)
	for w := 0; w < c.Clients; w++ {
		w := w
		k.Spawn("load-closed", func(t *sim.Task) {
			for i := 0; i < c.PerClient; i++ {
				s0 := t.Now()
				err := req(t, w, i)
				if err != nil {
					st.Errors++
				} else {
					st.Requests++
					st.Hist.Record(t.Now() - s0)
				}
			}
			wg.Done()
		})
	}
	wg.Wait(tk)
	st.End = tk.Now()
	return st
}

// Open is an open-loop driver: Requests arrivals from a Poisson
// process with mean rate Rate (requests per second of virtual time),
// each served by its own spawned task regardless of whether earlier
// requests finished — offered load does not slow down when the system
// saturates, which is what exposes the saturation knee.
type Open struct {
	Rate     float64 // mean arrival rate, req/s; must be > 0
	Requests int
	Seed     int64 // arrival-process seed
}

// Arrivals returns the deterministic arrival offsets relative to the
// driver start: a pure function of (Rate, Requests, Seed), so the
// byte-stability of the arrival sequence is testable in isolation.
func (o Open) Arrivals() []sim.Time {
	rng := rand.New(rand.NewSource(o.Seed))
	out := make([]sim.Time, o.Requests)
	at := 0.0
	for i := range out {
		at += rng.ExpFloat64() / o.Rate * 1e9 // exponential interarrival, ns
		out[i] = sim.Time(at)
	}
	return out
}

// Run drives req open-loop and blocks until every request completed.
// Latency is measured from the request's scheduled arrival, so
// post-saturation queueing shows up in the percentiles.
func (o Open) Run(tk *sim.Task, req func(t *sim.Task, i int) error) *Stats {
	arrivals := o.Arrivals()
	k := tk.Kernel()
	st := &Stats{Start: tk.Now()}
	var wg sim.WaitGroup
	wg.Add(len(arrivals))
	base := tk.Now()
	inflight := 0
	for i := range arrivals {
		i := i
		if d := base + arrivals[i] - tk.Now(); d > 0 {
			tk.Sleep(d)
		}
		inflight++
		if inflight > st.InflightHWM {
			st.InflightHWM = inflight
		}
		arrived := tk.Now()
		k.Spawn("load-open", func(t *sim.Task) {
			err := req(t, i)
			inflight--
			if err != nil {
				st.Errors++
			} else {
				st.Requests++
				st.Hist.Record(t.Now() - arrived)
			}
			wg.Done()
		})
	}
	wg.Wait(tk)
	st.End = tk.Now()
	return st
}

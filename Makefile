# FractOS-Go build targets (stdlib only; no external deps).

GO ?= go

.PHONY: all build vet lint test race chaos determinism bench bench-json eval trace examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | (! grep .) || (echo "gofmt needed"; exit 1)

# lint runs the repository's custom analyzers — the per-function
# checks (capcheck, epochguard, panicfree, regcheck, sendcheck,
# simdet, statuscheck) plus the interprocedural pair built on the shared call
# graph: poolcheck (pooled-resource lifecycle) and allocfree
# (//fractos:hotpath zero-alloc enforcement); see
# docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/fractos-vet

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suites (docs/FAULTS.md) under the
# race detector: the soak matrix and crash/partition tests in core,
# the heartbeat detector, the client retry policies, and the
# chaos testbed/experiment wiring.
chaos:
	$(GO) test -race -run 'Chaos|Crash|Heartbeat|Retry|Breaker|Backoff|Fault|Watch' \
		./internal/core/ ./internal/fabric/ ./internal/proc/ \
		./internal/services/ ./internal/testbed/ ./internal/exp/

# determinism runs the PDES acceptance matrix under the race detector
# at 1 and 4 CPUs: byte-identical traces and event counts across runs,
# shard counts, and GOMAXPROCS (sim engine ordering property tests,
# the fabric mesh ring, and the full-stack experiment matrix).
determinism:
	$(GO) test -race -cpu 1,4 -count=1 \
		-run 'Determinism|EnginePost|EngineSingleShard|MeshRing' \
		./internal/sim/ ./internal/fabric/ ./internal/exp/

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the wall-clock perf suite (internal/perf) and writes
# the machine-readable report tracked across PRs; see
# docs/PERFORMANCE.md for the methodology and how to compare runs.
# Override the output file per PR: make bench-json BENCH_OUT=BENCH_PR10.json
BENCH_OUT ?= BENCH_PR10.json

bench-json:
	$(GO) run ./cmd/fractos-bench -json > $(BENCH_OUT)

# Regenerate every table and figure of the paper's evaluation.
eval:
	$(GO) run ./cmd/fractos-bench

trace:
	$(GO) run ./cmd/fractos-trace

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/storage
	$(GO) run ./examples/dataflow
	$(GO) run ./examples/failover
	$(GO) run ./examples/faceverify
	$(GO) run ./examples/chaos

clean:
	$(GO) clean ./...

# FractOS-Go build targets (stdlib only; no external deps).

GO ?= go

.PHONY: all build vet test race bench eval trace examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | (! grep .) || (echo "gofmt needed"; exit 1)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
eval:
	$(GO) run ./cmd/fractos-bench

trace:
	$(GO) run ./cmd/fractos-trace

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/storage
	$(GO) run ./examples/dataflow
	$(GO) run ./examples/failover
	$(GO) run ./examples/faceverify

clean:
	$(GO) clean ./...
